package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"graphene/internal/dram"
)

// Binary trace format (DESIGN.md §10, §13). The stream is:
//
//	magic    "RHTB1\n" or "RHTB2\n" (6 bytes; the digit is the version)
//	header   uvarint nameLen (≤ MaxNameLen), nameLen name bytes
//	         uvarint banks  (max bank index + 1; 0 for an empty trace)
//	         uvarint total  (access count)
//	segments repeated: uvarint payloadLen (> 0), payloadLen payload bytes
//	end      uvarint 0
//
// Each segment covers up to segmentAccs consecutive accesses of the
// stream and lays them out columnarly per bank:
//
//	uvarint flags             (version 2 only; bit 0 = dwell column,
//	                           any other bit set is an error)
//	uvarint nblocks (≥ 1)
//	nblocks × block, in strictly ascending bank order:
//	    uvarint bank, uvarint count (≥ 1)
//	    count × varint rowDelta   (zigzag; vs the bank's previous row,
//	                               starting at 0 at the stream head)
//	    count × varint gapDelta   (zigzag; vs the bank's previous gap)
//	    count × varint dwellDelta (only when the segment's dwell flag is
//	                               set; zigzag vs the bank's previous
//	                               dwell, which advances only across
//	                               dwell-carrying segments)
//	uvarint nruns (≥ 1)
//	nruns × (uvarint bank, uvarint runLen ≥ 1)
//
// The blocks carry everything replay needs — per-bank access order is the
// only order the timing model observes — so the block reader hands them
// to per-bank consumers without touching the run list. The runs record
// the original global interleaving as run-length-encoded bank indices, so
// ReadBinary reconstructs the exact access sequence and a text↔binary
// round trip is lossless. Delta state (previous row/gap per bank) runs
// across segment boundaries.
//
// Version 2 exists only to carry the open-row dwell column: the writer
// emits version 1 — byte-identical to the pre-dwell codec — whenever no
// access in the whole trace carries a dwell, so every existing trace
// file, golden, and resume journal stays valid byte-for-byte, and a v1
// reader can never silently misparse a v2 stream (the magic differs).
//
// Every field a hostile stream controls is bounded before allocation
// (name length, segment payload size, bank index), decoded values are
// checked against the shared limits in io.go, and the header's total must
// match the decoded count — so a torn or truncated tail is always an
// error, never a silently short trace.

var (
	binaryMagic   = []byte("RHTB1\n")
	binaryMagicV2 = []byte("RHTB2\n")
)

// segment flag bits (version 2).
const (
	segFlagDwell  = 1 << 0
	segFlagsKnown = segFlagDwell
)

const (
	// MaxNameLen bounds the stored trace name.
	MaxNameLen = 4096

	// segmentAccs is how many accesses the writer packs per segment: large
	// enough to amortize framing and give replay consumers full blocks,
	// small enough that one decoded segment stays a few hundred KB.
	segmentAccs = 1 << 16

	// maxSegmentBytes rejects absurd payload lengths before allocating.
	// The writer's segments encode ≤ segmentAccs accesses at ≤ 20 bytes
	// each plus framing, far under this.
	maxSegmentBytes = 16 << 20
)

// ErrNotBinary reports that a stream does not start with the binary
// magic; ReadAuto uses it to fall back to the text parser.
var ErrNotBinary = errors.New("trace: not a binary trace (magic mismatch)")

// IsBinary reports whether r's next bytes are a binary trace magic
// (either version), without consuming them. A stream shorter than the
// magic is not binary.
func IsBinary(r *bufio.Reader) bool {
	return binaryVersion(r) != 0
}

// binaryVersion peeks r's magic and returns the format version it names,
// or 0 when the stream is not a binary trace.
func binaryVersion(r *bufio.Reader) int {
	head, err := r.Peek(len(binaryMagic))
	switch {
	case err != nil:
		return 0
	case bytes.Equal(head, binaryMagic):
		return 1
	case bytes.Equal(head, binaryMagicV2):
		return 2
	}
	return 0
}

// binErrf wraps binary-codec errors with a uniform prefix.
func binErrf(format string, args ...any) error {
	return fmt.Errorf("trace: binary: "+format, args...)
}

// ---------------------------------------------------------------- writer

// binEncoder accumulates the stream segment by segment. Header fields
// (banks, total) — and the format version, which depends on whether any
// access anywhere carries a dwell — are only known once the generator is
// drained, so encoded segment payloads buffer in memory (a few bytes per
// access, unframed) and flush to the writer after the header with the
// version-appropriate framing.
type binEncoder struct {
	scratch []Access // current segment, arrival order
	body    []byte   // concatenated raw segment payloads so far
	segs    []encSeg // framing for each payload in body
	payload []byte   // reused per-segment encode buffer
	runsEnc []byte   // reused run-list encode buffer

	prevRow   []int64 // per-bank delta state, grown on demand
	prevGap   []int64
	prevDwell []int64 // advances only across dwell-carrying segments

	maxBank int
	total   int64
}

// encSeg frames one buffered segment payload: its byte length within body
// and its version-2 flags (0 in a trace that ends up version 1).
type encSeg struct {
	n     int
	flags uint64
}

// grow extends the per-bank delta-state arrays to cover bank.
func (e *binEncoder) grow(bank int) {
	for len(e.prevRow) <= bank {
		e.prevRow = append(e.prevRow, 0)
		e.prevGap = append(e.prevGap, 0)
		e.prevDwell = append(e.prevDwell, 0)
	}
}

func (e *binEncoder) add(a Access) {
	e.scratch = append(e.scratch, a)
	if a.Bank > e.maxBank {
		e.maxBank = a.Bank
	}
	e.total++
	if len(e.scratch) >= segmentAccs {
		e.flush()
	}
}

// flush encodes the scratch segment into body.
func (e *binEncoder) flush() {
	if len(e.scratch) == 0 {
		return
	}
	// A segment carries the dwell column iff any of its accesses has one;
	// a dwell-free segment of a dwell-carrying trace stays column-free
	// (and leaves the per-bank dwell delta state untouched).
	var flags uint64
	for _, a := range e.scratch {
		if a.Dwell != 0 {
			flags |= segFlagDwell
			break
		}
	}
	// Group per bank, preserving per-bank order.
	banks := map[int][]Access{}
	var order []int
	for _, a := range e.scratch {
		if _, ok := banks[a.Bank]; !ok {
			order = append(order, a.Bank)
		}
		banks[a.Bank] = append(banks[a.Bank], a)
	}
	sort.Ints(order)

	p := e.payload[:0]
	p = binary.AppendUvarint(p, uint64(len(order)))
	for _, bank := range order {
		e.grow(bank)
		col := banks[bank]
		p = binary.AppendUvarint(p, uint64(bank))
		p = binary.AppendUvarint(p, uint64(len(col)))
		for _, a := range col {
			p = binary.AppendVarint(p, int64(a.Row)-e.prevRow[bank])
			e.prevRow[bank] = int64(a.Row)
		}
		for _, a := range col {
			p = binary.AppendVarint(p, int64(a.Gap)-e.prevGap[bank])
			e.prevGap[bank] = int64(a.Gap)
		}
		if flags&segFlagDwell != 0 {
			for _, a := range col {
				p = binary.AppendVarint(p, int64(a.Dwell)-e.prevDwell[bank])
				e.prevDwell[bank] = int64(a.Dwell)
			}
		}
	}
	// Run-length encode the original interleaving into a side buffer (the
	// run count precedes the runs, and is only known afterwards).
	var runs int
	rb := e.runsEnc[:0]
	for i := 0; i < len(e.scratch); {
		j := i + 1
		for j < len(e.scratch) && e.scratch[j].Bank == e.scratch[i].Bank {
			j++
		}
		rb = binary.AppendUvarint(rb, uint64(e.scratch[i].Bank))
		rb = binary.AppendUvarint(rb, uint64(j-i))
		runs++
		i = j
	}
	e.runsEnc = rb
	p = binary.AppendUvarint(p, uint64(runs))
	p = append(p, rb...)

	e.body = append(e.body, p...)
	e.segs = append(e.segs, encSeg{n: len(p), flags: flags})
	e.payload = p[:0]
	e.scratch = e.scratch[:0]
}

// version returns the lowest format version that can carry the buffered
// segments: 2 iff any segment needs a flags word, else 1.
func (e *binEncoder) version() int {
	for _, s := range e.segs {
		if s.flags != 0 {
			return 2
		}
	}
	return 1
}

// writeSegments frames the buffered payloads for the given version and
// writes them to w. Version 1 framing is uvarint(len) + payload — the
// pre-dwell codec byte-for-byte; version 2 prefixes each payload with its
// flags word inside the frame.
func (e *binEncoder) writeSegments(w io.Writer, version int) error {
	var flagsBuf, headBuf [binary.MaxVarintLen64]byte
	off := 0
	for _, s := range e.segs {
		var head []byte
		if version >= 2 {
			flagsEnc := binary.AppendUvarint(flagsBuf[:0], s.flags)
			head = binary.AppendUvarint(headBuf[:0], uint64(s.n)+uint64(len(flagsEnc)))
			head = append(head, flagsEnc...)
		} else {
			head = binary.AppendUvarint(headBuf[:0], uint64(s.n))
		}
		if _, err := w.Write(head); err != nil {
			return err
		}
		if _, err := w.Write(e.body[off : off+s.n]); err != nil {
			return err
		}
		off += s.n
	}
	return nil
}

// WriteBinary drains gen into w in the binary trace format and returns
// the number of accesses written. The trace name is stored verbatim
// (length-prefixed, so unlike the text header it needs no sanitizing) but
// must fit MaxNameLen; every access must satisfy the shared limits.
func WriteBinary(w io.Writer, gen Generator) (int64, error) {
	name := gen.Name()
	if len(name) > MaxNameLen {
		return 0, binErrf("name is %d bytes, limit %d", len(name), MaxNameLen)
	}
	enc := &binEncoder{}
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if err := checkLimits(int64(a.Bank), int64(a.Row), int64(a.Gap)); err != nil {
			return 0, binErrf("access %d: %w", enc.total, err)
		}
		if err := checkDwell(int64(a.Dwell)); err != nil {
			return 0, binErrf("access %d: %w", enc.total, err)
		}
		enc.add(a)
	}
	enc.flush()

	banks := 0
	if enc.total > 0 {
		banks = enc.maxBank + 1
	}
	version := enc.version()
	head := AppendBinaryHeaderVersion(nil, name, banks, enc.total, version)
	if _, err := w.Write(head); err != nil {
		return 0, err
	}
	if err := enc.writeSegments(w, version); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte{0}); err != nil { // end marker
		return 0, err
	}
	return enc.total, nil
}

// AppendBinaryHeader appends the version-1 binary trace header — magic,
// length-prefixed name, bank count, access count, all canonical uvarints —
// to dst and returns it. It is the exact byte sequence WriteBinary puts
// before the first segment, exposed so a journaled session can reconstruct
// the prefix of a half-streamed trace without re-encoding any accesses
// (serve's resume path glues this header onto the journaled raw segments).
func AppendBinaryHeader(dst []byte, name string, banks int, total int64) []byte {
	return AppendBinaryHeaderVersion(dst, name, banks, total, 1)
}

// AppendBinaryHeaderVersion is AppendBinaryHeader for an explicit format
// version (1 or 2; anything else panics — the version comes from this
// package's own reader/writer, never from the wire). Resume journals
// record the version of the stream they journaled so the reconstructed
// header matches the spliced segment bytes.
func AppendBinaryHeaderVersion(dst []byte, name string, banks int, total int64, version int) []byte {
	switch version {
	case 1:
		dst = append(dst, binaryMagic...)
	case 2:
		dst = append(dst, binaryMagicV2...)
	default:
		panic(fmt.Sprintf("trace: binary header version %d (want 1 or 2)", version))
	}
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	dst = binary.AppendUvarint(dst, uint64(banks))
	dst = binary.AppendUvarint(dst, uint64(total))
	return dst
}

// SkipBinaryPrefix consumes the binary header and the first n segments
// from r, validating magic and field limits but decoding nothing. It is
// the client half of session resume: after the server acknowledges m
// segments already replayed, the client skips header plus m segments and
// streams the remainder — raw length-prefixed segments and the end marker
// — from the same reader. A stream that ends (or hits the end marker)
// before n segments is an error: the resume handle promises at least that
// many.
func SkipBinaryPrefix(r *bufio.Reader, n int) error {
	if binaryVersion(r) == 0 {
		return ErrNotBinary
	}
	if _, err := r.Discard(len(binaryMagic)); err != nil {
		return binErrf("header: %w", err)
	}
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return binErrf("header: truncated name length: %w", noEOF(err))
	}
	if nameLen > MaxNameLen {
		return binErrf("header: name length %d exceeds limit %d", nameLen, MaxNameLen)
	}
	if _, err := r.Discard(int(nameLen)); err != nil {
		return binErrf("header: truncated name: %w", noEOF(err))
	}
	for _, what := range []string{"bank count", "access count"} {
		if _, err := binary.ReadUvarint(r); err != nil {
			return binErrf("header: truncated %s: %w", what, noEOF(err))
		}
	}
	for i := 0; i < n; i++ {
		segLen, err := binary.ReadUvarint(r)
		if err != nil {
			return binErrf("skip: truncated stream at segment %d: %w", i, noEOF(err))
		}
		if segLen == 0 {
			return binErrf("skip: stream carries %d segments, resume needs %d", i, n)
		}
		if segLen > maxSegmentBytes {
			return binErrf("segment of %d bytes exceeds limit %d", segLen, maxSegmentBytes)
		}
		if _, err := r.Discard(int(segLen)); err != nil {
			return binErrf("skip: truncated segment %d: %w", i, noEOF(err))
		}
	}
	return nil
}

// ---------------------------------------------------------------- reader

// Block is one bank's slice of a segment: up to segmentAccs consecutive
// accesses of that bank, in stream order. Accs aliases the buffer passed
// to BlockReader.Next.
type Block struct {
	Bank int
	Accs []Access
}

// segBlock records one decoded block of the current segment, for
// validating the segment's run list against its blocks.
type segBlock struct {
	bank  int
	count int64
}

// BlockReader streams a binary trace as per-bank blocks, skipping the
// global-order reconstruction — the ingest path for bank-parallel replay
// (memctrl.RunBlocks). The header is read eagerly, so Name, Banks, and
// Total are available before any block decodes; Banks in particular makes
// geometry auto-detection free, where the text format needs a full pass.
type BlockReader struct {
	src     *bufio.Reader
	name    string
	banks   int
	total   int64
	version int

	// OnSegment, when set, is called once per fully decoded and validated
	// segment with the raw payload bytes exactly as they appeared on the
	// wire (without the length prefix). The slice is only valid for the
	// duration of the call — the reader reuses the buffer for the next
	// segment. A non-nil error poisons the reader: the current decode call
	// fails with it and no further segments are delivered. serve uses this
	// to journal replayed segments for session resume and to pace partial
	// reports; the hook fires at the single point where a segment is known
	// complete, so a journaled segment is never a torn one.
	OnSegment func(payload []byte) error

	prevRow   []int64
	prevGap   []int64
	prevDwell []int64 // advances only across dwell-carrying segments

	payload     []byte // current segment bytes, reused
	off         int    // decode cursor within payload
	segOpen     bool   // a segment's run list is still pending
	segHasDwell bool   // current segment carries the dwell column
	blocksLeft  int    // blocks not yet returned from the current segment
	segAccs     int64  // accesses decoded from the current segment
	segBlocks   []segBlock
	consumed    []int64 // runList's per-bank accounting, reused across segments

	decoded  int64
	segments int
	done     bool
}

// NewBlockReader checks the magic and reads the header. A stream that
// does not start with the binary magic returns ErrNotBinary with nothing
// consumed beyond the peek (r is internally buffered; use ReadAuto for
// transparent fallback to the text parser).
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	src, ok := r.(*bufio.Reader)
	if !ok {
		src = bufio.NewReader(r)
	}
	version := binaryVersion(src)
	if version == 0 {
		return nil, ErrNotBinary
	}
	if _, err := src.Discard(len(binaryMagic)); err != nil {
		return nil, binErrf("header: %w", err)
	}
	nameLen, err := binary.ReadUvarint(src)
	if err != nil {
		return nil, binErrf("header: truncated name length: %w", noEOF(err))
	}
	if nameLen > MaxNameLen {
		return nil, binErrf("header: name length %d exceeds limit %d", nameLen, MaxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(src, name); err != nil {
		return nil, binErrf("header: truncated name: %w", noEOF(err))
	}
	banks, err := binary.ReadUvarint(src)
	if err != nil {
		return nil, binErrf("header: truncated bank count: %w", noEOF(err))
	}
	if banks > MaxBank+1 {
		return nil, binErrf("header: %d banks exceeds limit %d", banks, MaxBank+1)
	}
	total, err := binary.ReadUvarint(src)
	if err != nil {
		return nil, binErrf("header: truncated access count: %w", noEOF(err))
	}
	if total > 1<<62 {
		return nil, binErrf("header: absurd access count %d", total)
	}
	return &BlockReader{src: src, name: string(name), banks: int(banks), total: int64(total), version: version}, nil
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: every mid-stream
// EOF in the binary codec means a torn tail, and io.EOF must stay
// reserved for BlockReader.Next's clean end-of-trace.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Name returns the trace name stored in the header.
func (br *BlockReader) Name() string { return br.name }

// Version returns the stream's format version (1 = pre-dwell codec, 2 =
// segments may carry the open-row dwell column).
func (br *BlockReader) Version() int { return br.version }

// Banks returns the header's bank count (max bank index + 1).
func (br *BlockReader) Banks() int { return br.banks }

// Total returns the header's access count.
func (br *BlockReader) Total() int64 { return br.total }

// Decoded returns the number of accesses decoded so far.
func (br *BlockReader) Decoded() int64 { return br.decoded }

// Segments returns the number of segments fully decoded and validated so
// far (the count of OnSegment firings, whether or not the hook is set).
func (br *BlockReader) Segments() int { return br.segments }

// uvarint decodes an unsigned varint from the current payload.
func (br *BlockReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(br.payload[br.off:])
	if n <= 0 {
		return 0, binErrf("segment: truncated %s", what)
	}
	br.off += n
	return v, nil
}

// Next decodes the next block, appending its accesses to buf[:0] (pass
// nil to allocate). It returns io.EOF after the end marker of a complete,
// length-consistent stream; a torn tail or any malformed field is a
// non-EOF error.
func (br *BlockReader) Next(buf []Access) (Block, error) {
	if br.done {
		return Block{}, io.EOF
	}
	for br.blocksLeft == 0 {
		if br.segOpen {
			// Finish the open segment: its run list must replay exactly
			// the blocks it came with.
			if _, err := br.runList(nil, false); err != nil {
				return Block{}, err
			}
			continue
		}
		if err := br.nextSegment(); err != nil {
			if err == io.EOF {
				br.done = true
			}
			return Block{}, err
		}
	}
	return br.decodeBlock(buf)
}

// nextSegment reads the next segment payload, returning io.EOF on a clean
// end marker.
func (br *BlockReader) nextSegment() error {
	n, err := binary.ReadUvarint(br.src)
	if err != nil {
		return binErrf("truncated stream (missing end marker): %w", noEOF(err))
	}
	if n == 0 {
		if br.decoded != br.total {
			return binErrf("truncated stream: header promises %d accesses, segments carry %d", br.total, br.decoded)
		}
		return io.EOF
	}
	if n > maxSegmentBytes {
		return binErrf("segment of %d bytes exceeds limit %d", n, maxSegmentBytes)
	}
	if cap(br.payload) < int(n) {
		br.payload = make([]byte, n)
	}
	br.payload = br.payload[:n]
	if _, err := io.ReadFull(br.src, br.payload); err != nil {
		return binErrf("truncated segment: %w", noEOF(err))
	}
	br.off = 0
	br.segHasDwell = false
	if br.version >= 2 {
		flags, err := br.uvarint("flags")
		if err != nil {
			return err
		}
		if flags&^uint64(segFlagsKnown) != 0 {
			return binErrf("segment: unknown flags %#x (decoder knows %#x)", flags, segFlagsKnown)
		}
		br.segHasDwell = flags&segFlagDwell != 0
	}
	nblocks, err := br.uvarint("block count")
	if err != nil {
		return err
	}
	if nblocks == 0 || nblocks > uint64(MaxBank)+1 {
		return binErrf("segment: bad block count %d", nblocks)
	}
	br.segOpen = true
	br.blocksLeft = int(nblocks)
	br.segAccs = 0
	br.segBlocks = br.segBlocks[:0]
	return nil
}

// blockHead parses and validates the bank/count header of the next block
// in the open segment, growing the per-bank delta state to cover the bank.
// Shared by the struct (decodeBlock) and columnar (decodeBlockCols)
// decoders so the hostile-field checks exist once.
func (br *BlockReader) blockHead() (bank, count int, err error) {
	bank64, err := br.uvarint("bank")
	if err != nil {
		return 0, 0, err
	}
	if bank64 > MaxBank {
		return 0, 0, binErrf("segment: %w", checkLimits(int64(bank64), 0, 0))
	}
	bank = int(bank64)
	if bank >= br.banks {
		return 0, 0, binErrf("segment: block for bank %d, header has %d banks", bank, br.banks)
	}
	if n := len(br.segBlocks); n > 0 && br.segBlocks[n-1].bank >= bank {
		return 0, 0, binErrf("segment: bank %d out of order (blocks must ascend)", bank)
	}
	count64, err := br.uvarint("access count")
	if err != nil {
		return 0, 0, err
	}
	// The writer never packs more than segmentAccs accesses into one
	// segment; enforcing that here bounds what a hostile count field can
	// make the decoder allocate.
	if count64 == 0 || count64 > segmentAccs || br.segAccs+int64(count64) > segmentAccs {
		return 0, 0, binErrf("segment: bad block length %d (segment limit %d accesses)", count64, segmentAccs)
	}
	for len(br.prevRow) <= bank {
		br.prevRow = append(br.prevRow, 0)
		br.prevGap = append(br.prevGap, 0)
		br.prevDwell = append(br.prevDwell, 0)
	}
	return bank, int(count64), nil
}

// blockDone records a fully decoded block in the segment accounting.
func (br *BlockReader) blockDone(bank, count int) {
	br.segBlocks = append(br.segBlocks, segBlock{bank: bank, count: int64(count)})
	br.blocksLeft--
	br.segAccs += int64(count)
	br.decoded += int64(count)
}

// decodeBlock decodes one block from the open segment into buf[:0].
func (br *BlockReader) decodeBlock(buf []Access) (Block, error) {
	bank, count, err := br.blockHead()
	if err != nil {
		return Block{}, err
	}
	accs := buf[:0]
	if cap(accs) < int(count) {
		accs = make([]Access, count)
	} else {
		accs = accs[:count]
	}
	// The two column loops below are the decoder's per-access hot path —
	// the throughput `make bench-trace` gates — so the varints decode
	// inline with a single-byte fast path (most deltas are small) instead
	// of through the method helpers, and the cursor lives in a local.
	p, off := br.payload, br.off
	prev := br.prevRow[bank]
	for i := range accs {
		if off >= len(p) {
			return Block{}, binErrf("segment: truncated row delta")
		}
		c := p[off]
		off++
		u := uint64(c)
		if c >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				if off >= len(p) || shift > 63 {
					return Block{}, binErrf("segment: truncated row delta")
				}
				c = p[off]
				off++
				u |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
			}
		}
		row := prev + (int64(u>>1) ^ -int64(u&1)) // zigzag decode
		if row < 0 || row > MaxRow {
			return Block{}, binErrf("segment: %w", checkLimits(int64(bank), row, 0))
		}
		prev = row
		accs[i] = Access{Bank: bank, Row: int(row)}
	}
	br.prevRow[bank] = prev
	prev = br.prevGap[bank]
	for i := range accs {
		if off >= len(p) {
			return Block{}, binErrf("segment: truncated gap delta")
		}
		c := p[off]
		off++
		u := uint64(c)
		if c >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				if off >= len(p) || shift > 63 {
					return Block{}, binErrf("segment: truncated gap delta")
				}
				c = p[off]
				off++
				u |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
			}
		}
		gap := prev + (int64(u>>1) ^ -int64(u&1))
		if gap < 0 {
			return Block{}, binErrf("segment: %w", checkLimits(int64(bank), 0, gap))
		}
		prev = gap
		accs[i].Gap = dram.Time(gap)
	}
	br.prevGap[bank] = prev
	if br.segHasDwell {
		prev = br.prevDwell[bank]
		for i := range accs {
			if off >= len(p) {
				return Block{}, binErrf("segment: truncated dwell delta")
			}
			c := p[off]
			off++
			u := uint64(c)
			if c >= 0x80 {
				u &= 0x7f
				for shift := uint(7); ; shift += 7 {
					if off >= len(p) || shift > 63 {
						return Block{}, binErrf("segment: truncated dwell delta")
					}
					c = p[off]
					off++
					u |= uint64(c&0x7f) << shift
					if c < 0x80 {
						break
					}
				}
			}
			dwell := prev + (int64(u>>1) ^ -int64(u&1))
			if dwell < 0 {
				return Block{}, binErrf("segment: %w", checkDwell(dwell))
			}
			prev = dwell
			accs[i].Dwell = dram.Time(dwell)
		}
		br.prevDwell[bank] = prev
	}
	br.off = off
	br.blockDone(bank, count)
	return Block{Bank: bank, Accs: accs}, nil
}

// ColBlock is one bank's slice of a segment in columnar layout: Rows[i] at
// Gaps[i] is the bank's i-th access of the block, in stream order. Rows fit
// int32 because the shared limits cap row addresses at MaxRow = 2³¹−1 —
// this is the layout the batched replay core consumes directly
// (memctrl's event-horizon loop and Mitigator.AppendOnActivateBatch), so
// block ingest never materializes per-access structs. All columns alias
// the buffer passed to NextCols.
//
// Dwells is the open-row duration column. It is present (len == count)
// only when the block's segment carries the dwell column; otherwise it is
// left empty — length zero, capacity preserved for recycling — and every
// access's dwell is the device default. Consumers branch on
// len(Dwells) != 0, never on nil.
type ColBlock struct {
	Bank   int
	Rows   []int32
	Gaps   []dram.Time
	Dwells []dram.Time
}

// NextCols decodes the next block columnarly, appending into buf's columns
// (pass the zero ColBlock to allocate). Block order, validation, and the
// io.EOF end-of-trace contract match Next exactly; only the output layout
// differs. Next and NextCols may be interleaved freely — delta state
// advances identically through either.
func (br *BlockReader) NextCols(buf ColBlock) (ColBlock, error) {
	if br.done {
		return ColBlock{}, io.EOF
	}
	for br.blocksLeft == 0 {
		if br.segOpen {
			if _, err := br.runList(nil, false); err != nil {
				return ColBlock{}, err
			}
			continue
		}
		if err := br.nextSegment(); err != nil {
			if err == io.EOF {
				br.done = true
			}
			return ColBlock{}, err
		}
	}
	return br.decodeBlockCols(buf)
}

// decodeBlockCols decodes one block from the open segment into buf's
// columns. The column loops mirror decodeBlock's inline-varint hot path;
// they diverge only in writing split int32/Time columns instead of Access
// structs.
func (br *BlockReader) decodeBlockCols(buf ColBlock) (ColBlock, error) {
	bank, count, err := br.blockHead()
	if err != nil {
		return ColBlock{}, err
	}
	rows := buf.Rows[:0]
	if cap(rows) < count {
		rows = make([]int32, count)
	} else {
		rows = rows[:count]
	}
	gaps := buf.Gaps[:0]
	if cap(gaps) < count {
		gaps = make([]dram.Time, count)
	} else {
		gaps = gaps[:count]
	}
	p, off := br.payload, br.off
	prev := br.prevRow[bank]
	for i := range rows {
		if off >= len(p) {
			return ColBlock{}, binErrf("segment: truncated row delta")
		}
		c := p[off]
		off++
		u := uint64(c)
		if c >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				if off >= len(p) || shift > 63 {
					return ColBlock{}, binErrf("segment: truncated row delta")
				}
				c = p[off]
				off++
				u |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
			}
		}
		row := prev + (int64(u>>1) ^ -int64(u&1)) // zigzag decode
		if row < 0 || row > MaxRow {
			return ColBlock{}, binErrf("segment: %w", checkLimits(int64(bank), row, 0))
		}
		prev = row
		rows[i] = int32(row)
	}
	br.prevRow[bank] = prev
	prev = br.prevGap[bank]
	for i := range gaps {
		if off >= len(p) {
			return ColBlock{}, binErrf("segment: truncated gap delta")
		}
		c := p[off]
		off++
		u := uint64(c)
		if c >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				if off >= len(p) || shift > 63 {
					return ColBlock{}, binErrf("segment: truncated gap delta")
				}
				c = p[off]
				off++
				u |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
			}
		}
		gap := prev + (int64(u>>1) ^ -int64(u&1))
		if gap < 0 {
			return ColBlock{}, binErrf("segment: %w", checkLimits(int64(bank), 0, gap))
		}
		prev = gap
		gaps[i] = dram.Time(gap)
	}
	br.prevGap[bank] = prev
	dwells := buf.Dwells[:0]
	if br.segHasDwell {
		if cap(dwells) < count {
			dwells = make([]dram.Time, count)
		} else {
			dwells = dwells[:count]
		}
		prev = br.prevDwell[bank]
		for i := range dwells {
			if off >= len(p) {
				return ColBlock{}, binErrf("segment: truncated dwell delta")
			}
			c := p[off]
			off++
			u := uint64(c)
			if c >= 0x80 {
				u &= 0x7f
				for shift := uint(7); ; shift += 7 {
					if off >= len(p) || shift > 63 {
						return ColBlock{}, binErrf("segment: truncated dwell delta")
					}
					c = p[off]
					off++
					u |= uint64(c&0x7f) << shift
					if c < 0x80 {
						break
					}
				}
			}
			dwell := prev + (int64(u>>1) ^ -int64(u&1))
			if dwell < 0 {
				return ColBlock{}, binErrf("segment: %w", checkDwell(dwell))
			}
			prev = dwell
			dwells[i] = dram.Time(dwell)
		}
		br.prevDwell[bank] = prev
	}
	br.off = off
	br.blockDone(bank, count)
	return ColBlock{Bank: bank, Rows: rows, Gaps: gaps, Dwells: dwells}, nil
}

// runList parses the segment's run list, validating it against segBlocks:
// every run must name a bank with a block in this segment, and per bank
// the run lengths must sum to exactly the block length. When collect is
// set the runs are appended to dst[:0] (ReadBinary needs them to
// reconstruct global order); the block-ingest path skips that. On any
// error the reader is poisoned — callers must not continue decoding.
func (br *BlockReader) runList(dst []run, collect bool) ([]run, error) {
	dst = dst[:0]
	nruns, err := br.uvarint("run count")
	if err != nil {
		return nil, err
	}
	if nruns == 0 || nruns > uint64(maxSegmentBytes) {
		return nil, binErrf("segment: bad run count %d", nruns)
	}
	// consumed is reused across segments (zeroed on every exit path below);
	// a dense slice beats a map at typical run counts — one short run per
	// couple of accesses.
	if br.consumed == nil {
		br.consumed = make([]int64, br.banks)
	}
	named := 0
	p, off := br.payload, br.off
	for i := uint64(0); i < nruns; i++ {
		var vals [2]uint64 // bank, length — same inline varint as decodeBlock
		for f := 0; f < 2; f++ {
			if off >= len(p) {
				return nil, binErrf("segment: truncated run list")
			}
			c := p[off]
			off++
			u := uint64(c)
			if c >= 0x80 {
				u &= 0x7f
				for shift := uint(7); ; shift += 7 {
					if off >= len(p) || shift > 63 {
						return nil, binErrf("segment: truncated run list")
					}
					c = p[off]
					off++
					u |= uint64(c&0x7f) << shift
					if c < 0x80 {
						break
					}
				}
			}
			vals[f] = u
		}
		bank64, length := vals[0], vals[1]
		if bank64 >= uint64(br.banks) {
			return nil, binErrf("segment: run for bank %d, header has %d banks", bank64, br.banks)
		}
		if length == 0 {
			return nil, binErrf("segment: zero-length run")
		}
		if br.consumed[bank64] == 0 {
			named++
		}
		br.consumed[bank64] += int64(length)
		if collect {
			dst = append(dst, run{bank: int(bank64), n: int64(length)})
		}
	}
	br.off = off
	if br.off != len(br.payload) {
		return nil, binErrf("segment: %d trailing bytes", len(br.payload)-br.off)
	}
	if named != len(br.segBlocks) {
		return nil, binErrf("segment: run list names %d banks, blocks cover %d", named, len(br.segBlocks))
	}
	for _, sb := range br.segBlocks {
		if br.consumed[sb.bank] != sb.count {
			return nil, binErrf("segment: runs replay %d accesses of bank %d, block carries %d", br.consumed[sb.bank], sb.bank, sb.count)
		}
	}
	// All named banks are segment banks (named == len(segBlocks) and every
	// segment bank is named with a non-zero count), so this zeroes the
	// whole slice back for the next segment.
	for _, sb := range br.segBlocks {
		br.consumed[sb.bank] = 0
	}
	br.segments++
	if br.OnSegment != nil {
		if err := br.OnSegment(br.payload); err != nil {
			return nil, binErrf("segment hook: %w", err)
		}
	}
	br.segOpen = false
	br.payload = br.payload[:0]
	return dst, nil
}

type run struct {
	bank int
	n    int64
}

// ReadBinary reads a complete binary trace from r, reconstructing the
// exact global access order from the per-segment run lists, so a
// text→binary→text round trip is byte-identical modulo header
// sanitization.
func ReadBinary(r io.Reader) (*Trace, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	prealloc := br.total
	if prealloc > 1<<20 {
		prealloc = 1 << 20 // cap what a hostile header can make us allocate up front
	}
	out := make([]Access, 0, prealloc)
	// Per-bank pending accesses of the open segment, with a read cursor per
	// bank, and a pool recycling the block buffers across segments so the
	// steady state allocates nothing per block.
	cols := make([][]Access, br.banks)
	cur := make([]int64, br.banks)
	var pool [][]Access
	var runs []run
	for {
		if br.blocksLeft > 0 {
			var buf []Access
			if n := len(pool); n > 0 {
				buf, pool = pool[n-1], pool[:n-1]
			}
			blk, err := br.decodeBlock(buf)
			if err != nil {
				return nil, err
			}
			cols[blk.Bank] = blk.Accs
			continue
		}
		if br.segOpen {
			// Segment complete: apply its runs to recover global order.
			// runList guarantees every run's bank has a block in this
			// segment and the per-bank run lengths sum to exactly the block
			// lengths, so the copies below can never run past a column.
			segAccs := br.segAccs
			runs, err = br.runList(runs, true)
			if err != nil {
				return nil, err
			}
			// Grow once for the whole segment, then place each run with an
			// element loop: typical runs are a handful of accesses, where
			// the per-append grow checks and memmove calls dominate.
			base := len(out)
			for int64(cap(out)-base) < segAccs {
				out = append(out[:cap(out)], Access{})
			}
			out = out[:base+int(segAccs)]
			for _, ru := range runs {
				col := cols[ru.bank]
				c := cur[ru.bank]
				for i := int64(0); i < ru.n; i++ {
					out[base] = col[c+i]
					base++
				}
				cur[ru.bank] = c + ru.n
			}
			for _, sb := range br.segBlocks {
				if cur[sb.bank] != sb.count { // invariant, per runList above
					return nil, binErrf("segment: runs replay %d accesses of bank %d, block carries %d", cur[sb.bank], sb.bank, sb.count)
				}
				pool = append(pool, cols[sb.bank])
				cols[sb.bank] = nil
				cur[sb.bank] = 0
			}
			continue
		}
		if err := br.nextSegment(); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
	}
	return &Trace{Name: br.name, Accs: out}, nil
}

// ---------------------------------------------------------- auto-detect

// ReadAuto reads a trace in either format, sniffing the binary magic and
// falling back to the text parser. fallbackName applies only to text
// traces without a header line (the binary header always carries a name).
func ReadAuto(r io.Reader, fallbackName string) (*Trace, error) {
	src := bufio.NewReader(r)
	if IsBinary(src) {
		return ReadBinary(src)
	}
	return ReadAll(src, fallbackName)
}

// LoadFile reads a trace file in either format. The fallback name for
// headerless text traces is the file's base name.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f, filepath.Base(path))
}
