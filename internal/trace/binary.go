package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"graphene/internal/dram"
)

// Binary trace format (DESIGN.md §10). The stream is:
//
//	magic    "RHTB1\n" (6 bytes)
//	header   uvarint nameLen (≤ MaxNameLen), nameLen name bytes
//	         uvarint banks  (max bank index + 1; 0 for an empty trace)
//	         uvarint total  (access count)
//	segments repeated: uvarint payloadLen (> 0), payloadLen payload bytes
//	end      uvarint 0
//
// Each segment covers up to segmentAccs consecutive accesses of the
// stream and lays them out columnarly per bank:
//
//	uvarint nblocks (≥ 1)
//	nblocks × block, in strictly ascending bank order:
//	    uvarint bank, uvarint count (≥ 1)
//	    count × varint rowDelta   (zigzag; vs the bank's previous row,
//	                               starting at 0 at the stream head)
//	    count × varint gapDelta   (zigzag; vs the bank's previous gap)
//	uvarint nruns (≥ 1)
//	nruns × (uvarint bank, uvarint runLen ≥ 1)
//
// The blocks carry everything replay needs — per-bank access order is the
// only order the timing model observes — so the block reader hands them
// to per-bank consumers without touching the run list. The runs record
// the original global interleaving as run-length-encoded bank indices, so
// ReadBinary reconstructs the exact access sequence and a text↔binary
// round trip is lossless. Delta state (previous row/gap per bank) runs
// across segment boundaries.
//
// Every field a hostile stream controls is bounded before allocation
// (name length, segment payload size, bank index), decoded values are
// checked against the shared limits in io.go, and the header's total must
// match the decoded count — so a torn or truncated tail is always an
// error, never a silently short trace.

var binaryMagic = []byte("RHTB1\n")

const (
	// MaxNameLen bounds the stored trace name.
	MaxNameLen = 4096

	// segmentAccs is how many accesses the writer packs per segment: large
	// enough to amortize framing and give replay consumers full blocks,
	// small enough that one decoded segment stays a few hundred KB.
	segmentAccs = 1 << 16

	// maxSegmentBytes rejects absurd payload lengths before allocating.
	// The writer's segments encode ≤ segmentAccs accesses at ≤ 20 bytes
	// each plus framing, far under this.
	maxSegmentBytes = 16 << 20
)

// ErrNotBinary reports that a stream does not start with the binary
// magic; ReadAuto uses it to fall back to the text parser.
var ErrNotBinary = errors.New("trace: not a binary trace (magic mismatch)")

// IsBinary reports whether r's next bytes are the binary trace magic,
// without consuming them. A stream shorter than the magic is not binary.
func IsBinary(r *bufio.Reader) bool {
	head, err := r.Peek(len(binaryMagic))
	return err == nil && bytes.Equal(head, binaryMagic)
}

// binErrf wraps binary-codec errors with a uniform prefix.
func binErrf(format string, args ...any) error {
	return fmt.Errorf("trace: binary: "+format, args...)
}

// ---------------------------------------------------------------- writer

// binEncoder accumulates the stream segment by segment. Header fields
// (banks, total) are only known once the generator is drained, so encoded
// segment bytes buffer in memory — a few bytes per access — and flush to
// the writer after the header.
type binEncoder struct {
	scratch []Access // current segment, arrival order
	body    []byte   // encoded segments so far
	payload []byte   // reused per-segment encode buffer
	runsEnc []byte   // reused run-list encode buffer

	prevRow []int64 // per-bank delta state, grown on demand
	prevGap []int64

	maxBank int
	total   int64
}

// grow extends the per-bank delta-state arrays to cover bank.
func (e *binEncoder) grow(bank int) {
	for len(e.prevRow) <= bank {
		e.prevRow = append(e.prevRow, 0)
		e.prevGap = append(e.prevGap, 0)
	}
}

func (e *binEncoder) add(a Access) {
	e.scratch = append(e.scratch, a)
	if a.Bank > e.maxBank {
		e.maxBank = a.Bank
	}
	e.total++
	if len(e.scratch) >= segmentAccs {
		e.flush()
	}
}

// flush encodes the scratch segment into body.
func (e *binEncoder) flush() {
	if len(e.scratch) == 0 {
		return
	}
	// Group per bank, preserving per-bank order.
	banks := map[int][]Access{}
	var order []int
	for _, a := range e.scratch {
		if _, ok := banks[a.Bank]; !ok {
			order = append(order, a.Bank)
		}
		banks[a.Bank] = append(banks[a.Bank], a)
	}
	sort.Ints(order)

	p := e.payload[:0]
	p = binary.AppendUvarint(p, uint64(len(order)))
	for _, bank := range order {
		e.grow(bank)
		col := banks[bank]
		p = binary.AppendUvarint(p, uint64(bank))
		p = binary.AppendUvarint(p, uint64(len(col)))
		for _, a := range col {
			p = binary.AppendVarint(p, int64(a.Row)-e.prevRow[bank])
			e.prevRow[bank] = int64(a.Row)
		}
		for _, a := range col {
			p = binary.AppendVarint(p, int64(a.Gap)-e.prevGap[bank])
			e.prevGap[bank] = int64(a.Gap)
		}
	}
	// Run-length encode the original interleaving into a side buffer (the
	// run count precedes the runs, and is only known afterwards).
	var runs int
	rb := e.runsEnc[:0]
	for i := 0; i < len(e.scratch); {
		j := i + 1
		for j < len(e.scratch) && e.scratch[j].Bank == e.scratch[i].Bank {
			j++
		}
		rb = binary.AppendUvarint(rb, uint64(e.scratch[i].Bank))
		rb = binary.AppendUvarint(rb, uint64(j-i))
		runs++
		i = j
	}
	e.runsEnc = rb
	p = binary.AppendUvarint(p, uint64(runs))
	p = append(p, rb...)

	e.body = binary.AppendUvarint(e.body, uint64(len(p)))
	e.body = append(e.body, p...)
	e.payload = p[:0]
	e.scratch = e.scratch[:0]
}

// WriteBinary drains gen into w in the binary trace format and returns
// the number of accesses written. The trace name is stored verbatim
// (length-prefixed, so unlike the text header it needs no sanitizing) but
// must fit MaxNameLen; every access must satisfy the shared limits.
func WriteBinary(w io.Writer, gen Generator) (int64, error) {
	name := gen.Name()
	if len(name) > MaxNameLen {
		return 0, binErrf("name is %d bytes, limit %d", len(name), MaxNameLen)
	}
	enc := &binEncoder{}
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if err := checkLimits(int64(a.Bank), int64(a.Row), int64(a.Gap)); err != nil {
			return 0, binErrf("access %d: %w", enc.total, err)
		}
		enc.add(a)
	}
	enc.flush()

	banks := 0
	if enc.total > 0 {
		banks = enc.maxBank + 1
	}
	head := AppendBinaryHeader(nil, name, banks, enc.total)
	if _, err := w.Write(head); err != nil {
		return 0, err
	}
	if _, err := w.Write(enc.body); err != nil {
		return 0, err
	}
	if _, err := w.Write([]byte{0}); err != nil { // end marker
		return 0, err
	}
	return enc.total, nil
}

// AppendBinaryHeader appends the binary trace header — magic,
// length-prefixed name, bank count, access count, all canonical uvarints —
// to dst and returns it. It is the exact byte sequence WriteBinary puts
// before the first segment, exposed so a journaled session can reconstruct
// the prefix of a half-streamed trace without re-encoding any accesses
// (serve's resume path glues this header onto the journaled raw segments).
func AppendBinaryHeader(dst []byte, name string, banks int, total int64) []byte {
	dst = append(dst, binaryMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	dst = binary.AppendUvarint(dst, uint64(banks))
	dst = binary.AppendUvarint(dst, uint64(total))
	return dst
}

// SkipBinaryPrefix consumes the binary header and the first n segments
// from r, validating magic and field limits but decoding nothing. It is
// the client half of session resume: after the server acknowledges m
// segments already replayed, the client skips header plus m segments and
// streams the remainder — raw length-prefixed segments and the end marker
// — from the same reader. A stream that ends (or hits the end marker)
// before n segments is an error: the resume handle promises at least that
// many.
func SkipBinaryPrefix(r *bufio.Reader, n int) error {
	head, err := r.Peek(len(binaryMagic))
	if err != nil || !bytes.Equal(head, binaryMagic) {
		return ErrNotBinary
	}
	if _, err := r.Discard(len(binaryMagic)); err != nil {
		return binErrf("header: %w", err)
	}
	nameLen, err := binary.ReadUvarint(r)
	if err != nil {
		return binErrf("header: truncated name length: %w", noEOF(err))
	}
	if nameLen > MaxNameLen {
		return binErrf("header: name length %d exceeds limit %d", nameLen, MaxNameLen)
	}
	if _, err := r.Discard(int(nameLen)); err != nil {
		return binErrf("header: truncated name: %w", noEOF(err))
	}
	for _, what := range []string{"bank count", "access count"} {
		if _, err := binary.ReadUvarint(r); err != nil {
			return binErrf("header: truncated %s: %w", what, noEOF(err))
		}
	}
	for i := 0; i < n; i++ {
		segLen, err := binary.ReadUvarint(r)
		if err != nil {
			return binErrf("skip: truncated stream at segment %d: %w", i, noEOF(err))
		}
		if segLen == 0 {
			return binErrf("skip: stream carries %d segments, resume needs %d", i, n)
		}
		if segLen > maxSegmentBytes {
			return binErrf("segment of %d bytes exceeds limit %d", segLen, maxSegmentBytes)
		}
		if _, err := r.Discard(int(segLen)); err != nil {
			return binErrf("skip: truncated segment %d: %w", i, noEOF(err))
		}
	}
	return nil
}

// ---------------------------------------------------------------- reader

// Block is one bank's slice of a segment: up to segmentAccs consecutive
// accesses of that bank, in stream order. Accs aliases the buffer passed
// to BlockReader.Next.
type Block struct {
	Bank int
	Accs []Access
}

// segBlock records one decoded block of the current segment, for
// validating the segment's run list against its blocks.
type segBlock struct {
	bank  int
	count int64
}

// BlockReader streams a binary trace as per-bank blocks, skipping the
// global-order reconstruction — the ingest path for bank-parallel replay
// (memctrl.RunBlocks). The header is read eagerly, so Name, Banks, and
// Total are available before any block decodes; Banks in particular makes
// geometry auto-detection free, where the text format needs a full pass.
type BlockReader struct {
	src   *bufio.Reader
	name  string
	banks int
	total int64

	// OnSegment, when set, is called once per fully decoded and validated
	// segment with the raw payload bytes exactly as they appeared on the
	// wire (without the length prefix). The slice is only valid for the
	// duration of the call — the reader reuses the buffer for the next
	// segment. A non-nil error poisons the reader: the current decode call
	// fails with it and no further segments are delivered. serve uses this
	// to journal replayed segments for session resume and to pace partial
	// reports; the hook fires at the single point where a segment is known
	// complete, so a journaled segment is never a torn one.
	OnSegment func(payload []byte) error

	prevRow []int64
	prevGap []int64

	payload    []byte // current segment bytes, reused
	off        int    // decode cursor within payload
	segOpen    bool   // a segment's run list is still pending
	blocksLeft int    // blocks not yet returned from the current segment
	segAccs    int64  // accesses decoded from the current segment
	segBlocks  []segBlock
	consumed   []int64 // runList's per-bank accounting, reused across segments

	decoded  int64
	segments int
	done     bool
}

// NewBlockReader checks the magic and reads the header. A stream that
// does not start with the binary magic returns ErrNotBinary with nothing
// consumed beyond the peek (r is internally buffered; use ReadAuto for
// transparent fallback to the text parser).
func NewBlockReader(r io.Reader) (*BlockReader, error) {
	src, ok := r.(*bufio.Reader)
	if !ok {
		src = bufio.NewReader(r)
	}
	head, err := src.Peek(len(binaryMagic))
	if err != nil || !bytes.Equal(head, binaryMagic) {
		return nil, ErrNotBinary
	}
	if _, err := src.Discard(len(binaryMagic)); err != nil {
		return nil, binErrf("header: %w", err)
	}
	nameLen, err := binary.ReadUvarint(src)
	if err != nil {
		return nil, binErrf("header: truncated name length: %w", noEOF(err))
	}
	if nameLen > MaxNameLen {
		return nil, binErrf("header: name length %d exceeds limit %d", nameLen, MaxNameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(src, name); err != nil {
		return nil, binErrf("header: truncated name: %w", noEOF(err))
	}
	banks, err := binary.ReadUvarint(src)
	if err != nil {
		return nil, binErrf("header: truncated bank count: %w", noEOF(err))
	}
	if banks > MaxBank+1 {
		return nil, binErrf("header: %d banks exceeds limit %d", banks, MaxBank+1)
	}
	total, err := binary.ReadUvarint(src)
	if err != nil {
		return nil, binErrf("header: truncated access count: %w", noEOF(err))
	}
	if total > 1<<62 {
		return nil, binErrf("header: absurd access count %d", total)
	}
	return &BlockReader{src: src, name: string(name), banks: int(banks), total: int64(total)}, nil
}

// noEOF upgrades a bare io.EOF to io.ErrUnexpectedEOF: every mid-stream
// EOF in the binary codec means a torn tail, and io.EOF must stay
// reserved for BlockReader.Next's clean end-of-trace.
func noEOF(err error) error {
	if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Name returns the trace name stored in the header.
func (br *BlockReader) Name() string { return br.name }

// Banks returns the header's bank count (max bank index + 1).
func (br *BlockReader) Banks() int { return br.banks }

// Total returns the header's access count.
func (br *BlockReader) Total() int64 { return br.total }

// Decoded returns the number of accesses decoded so far.
func (br *BlockReader) Decoded() int64 { return br.decoded }

// Segments returns the number of segments fully decoded and validated so
// far (the count of OnSegment firings, whether or not the hook is set).
func (br *BlockReader) Segments() int { return br.segments }

// uvarint decodes an unsigned varint from the current payload.
func (br *BlockReader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(br.payload[br.off:])
	if n <= 0 {
		return 0, binErrf("segment: truncated %s", what)
	}
	br.off += n
	return v, nil
}

// Next decodes the next block, appending its accesses to buf[:0] (pass
// nil to allocate). It returns io.EOF after the end marker of a complete,
// length-consistent stream; a torn tail or any malformed field is a
// non-EOF error.
func (br *BlockReader) Next(buf []Access) (Block, error) {
	if br.done {
		return Block{}, io.EOF
	}
	for br.blocksLeft == 0 {
		if br.segOpen {
			// Finish the open segment: its run list must replay exactly
			// the blocks it came with.
			if _, err := br.runList(nil, false); err != nil {
				return Block{}, err
			}
			continue
		}
		if err := br.nextSegment(); err != nil {
			if err == io.EOF {
				br.done = true
			}
			return Block{}, err
		}
	}
	return br.decodeBlock(buf)
}

// nextSegment reads the next segment payload, returning io.EOF on a clean
// end marker.
func (br *BlockReader) nextSegment() error {
	n, err := binary.ReadUvarint(br.src)
	if err != nil {
		return binErrf("truncated stream (missing end marker): %w", noEOF(err))
	}
	if n == 0 {
		if br.decoded != br.total {
			return binErrf("truncated stream: header promises %d accesses, segments carry %d", br.total, br.decoded)
		}
		return io.EOF
	}
	if n > maxSegmentBytes {
		return binErrf("segment of %d bytes exceeds limit %d", n, maxSegmentBytes)
	}
	if cap(br.payload) < int(n) {
		br.payload = make([]byte, n)
	}
	br.payload = br.payload[:n]
	if _, err := io.ReadFull(br.src, br.payload); err != nil {
		return binErrf("truncated segment: %w", noEOF(err))
	}
	br.off = 0
	nblocks, err := br.uvarint("block count")
	if err != nil {
		return err
	}
	if nblocks == 0 || nblocks > uint64(MaxBank)+1 {
		return binErrf("segment: bad block count %d", nblocks)
	}
	br.segOpen = true
	br.blocksLeft = int(nblocks)
	br.segAccs = 0
	br.segBlocks = br.segBlocks[:0]
	return nil
}

// blockHead parses and validates the bank/count header of the next block
// in the open segment, growing the per-bank delta state to cover the bank.
// Shared by the struct (decodeBlock) and columnar (decodeBlockCols)
// decoders so the hostile-field checks exist once.
func (br *BlockReader) blockHead() (bank, count int, err error) {
	bank64, err := br.uvarint("bank")
	if err != nil {
		return 0, 0, err
	}
	if bank64 > MaxBank {
		return 0, 0, binErrf("segment: %w", checkLimits(int64(bank64), 0, 0))
	}
	bank = int(bank64)
	if bank >= br.banks {
		return 0, 0, binErrf("segment: block for bank %d, header has %d banks", bank, br.banks)
	}
	if n := len(br.segBlocks); n > 0 && br.segBlocks[n-1].bank >= bank {
		return 0, 0, binErrf("segment: bank %d out of order (blocks must ascend)", bank)
	}
	count64, err := br.uvarint("access count")
	if err != nil {
		return 0, 0, err
	}
	// The writer never packs more than segmentAccs accesses into one
	// segment; enforcing that here bounds what a hostile count field can
	// make the decoder allocate.
	if count64 == 0 || count64 > segmentAccs || br.segAccs+int64(count64) > segmentAccs {
		return 0, 0, binErrf("segment: bad block length %d (segment limit %d accesses)", count64, segmentAccs)
	}
	for len(br.prevRow) <= bank {
		br.prevRow = append(br.prevRow, 0)
		br.prevGap = append(br.prevGap, 0)
	}
	return bank, int(count64), nil
}

// blockDone records a fully decoded block in the segment accounting.
func (br *BlockReader) blockDone(bank, count int) {
	br.segBlocks = append(br.segBlocks, segBlock{bank: bank, count: int64(count)})
	br.blocksLeft--
	br.segAccs += int64(count)
	br.decoded += int64(count)
}

// decodeBlock decodes one block from the open segment into buf[:0].
func (br *BlockReader) decodeBlock(buf []Access) (Block, error) {
	bank, count, err := br.blockHead()
	if err != nil {
		return Block{}, err
	}
	accs := buf[:0]
	if cap(accs) < int(count) {
		accs = make([]Access, count)
	} else {
		accs = accs[:count]
	}
	// The two column loops below are the decoder's per-access hot path —
	// the throughput `make bench-trace` gates — so the varints decode
	// inline with a single-byte fast path (most deltas are small) instead
	// of through the method helpers, and the cursor lives in a local.
	p, off := br.payload, br.off
	prev := br.prevRow[bank]
	for i := range accs {
		if off >= len(p) {
			return Block{}, binErrf("segment: truncated row delta")
		}
		c := p[off]
		off++
		u := uint64(c)
		if c >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				if off >= len(p) || shift > 63 {
					return Block{}, binErrf("segment: truncated row delta")
				}
				c = p[off]
				off++
				u |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
			}
		}
		row := prev + (int64(u>>1) ^ -int64(u&1)) // zigzag decode
		if row < 0 || row > MaxRow {
			return Block{}, binErrf("segment: %w", checkLimits(int64(bank), row, 0))
		}
		prev = row
		accs[i] = Access{Bank: bank, Row: int(row)}
	}
	br.prevRow[bank] = prev
	prev = br.prevGap[bank]
	for i := range accs {
		if off >= len(p) {
			return Block{}, binErrf("segment: truncated gap delta")
		}
		c := p[off]
		off++
		u := uint64(c)
		if c >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				if off >= len(p) || shift > 63 {
					return Block{}, binErrf("segment: truncated gap delta")
				}
				c = p[off]
				off++
				u |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
			}
		}
		gap := prev + (int64(u>>1) ^ -int64(u&1))
		if gap < 0 {
			return Block{}, binErrf("segment: %w", checkLimits(int64(bank), 0, gap))
		}
		prev = gap
		accs[i].Gap = dram.Time(gap)
	}
	br.prevGap[bank] = prev
	br.off = off
	br.blockDone(bank, count)
	return Block{Bank: bank, Accs: accs}, nil
}

// ColBlock is one bank's slice of a segment in columnar layout: Rows[i] at
// Gaps[i] is the bank's i-th access of the block, in stream order. Rows fit
// int32 because the shared limits cap row addresses at MaxRow = 2³¹−1 —
// this is the layout the batched replay core consumes directly
// (memctrl's event-horizon loop and Mitigator.AppendOnActivateBatch), so
// block ingest never materializes per-access structs. Both columns alias
// the buffer passed to NextCols.
type ColBlock struct {
	Bank int
	Rows []int32
	Gaps []dram.Time
}

// NextCols decodes the next block columnarly, appending into buf's columns
// (pass the zero ColBlock to allocate). Block order, validation, and the
// io.EOF end-of-trace contract match Next exactly; only the output layout
// differs. Next and NextCols may be interleaved freely — delta state
// advances identically through either.
func (br *BlockReader) NextCols(buf ColBlock) (ColBlock, error) {
	if br.done {
		return ColBlock{}, io.EOF
	}
	for br.blocksLeft == 0 {
		if br.segOpen {
			if _, err := br.runList(nil, false); err != nil {
				return ColBlock{}, err
			}
			continue
		}
		if err := br.nextSegment(); err != nil {
			if err == io.EOF {
				br.done = true
			}
			return ColBlock{}, err
		}
	}
	return br.decodeBlockCols(buf)
}

// decodeBlockCols decodes one block from the open segment into buf's
// columns. The column loops mirror decodeBlock's inline-varint hot path;
// they diverge only in writing split int32/Time columns instead of Access
// structs.
func (br *BlockReader) decodeBlockCols(buf ColBlock) (ColBlock, error) {
	bank, count, err := br.blockHead()
	if err != nil {
		return ColBlock{}, err
	}
	rows := buf.Rows[:0]
	if cap(rows) < count {
		rows = make([]int32, count)
	} else {
		rows = rows[:count]
	}
	gaps := buf.Gaps[:0]
	if cap(gaps) < count {
		gaps = make([]dram.Time, count)
	} else {
		gaps = gaps[:count]
	}
	p, off := br.payload, br.off
	prev := br.prevRow[bank]
	for i := range rows {
		if off >= len(p) {
			return ColBlock{}, binErrf("segment: truncated row delta")
		}
		c := p[off]
		off++
		u := uint64(c)
		if c >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				if off >= len(p) || shift > 63 {
					return ColBlock{}, binErrf("segment: truncated row delta")
				}
				c = p[off]
				off++
				u |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
			}
		}
		row := prev + (int64(u>>1) ^ -int64(u&1)) // zigzag decode
		if row < 0 || row > MaxRow {
			return ColBlock{}, binErrf("segment: %w", checkLimits(int64(bank), row, 0))
		}
		prev = row
		rows[i] = int32(row)
	}
	br.prevRow[bank] = prev
	prev = br.prevGap[bank]
	for i := range gaps {
		if off >= len(p) {
			return ColBlock{}, binErrf("segment: truncated gap delta")
		}
		c := p[off]
		off++
		u := uint64(c)
		if c >= 0x80 {
			u &= 0x7f
			for shift := uint(7); ; shift += 7 {
				if off >= len(p) || shift > 63 {
					return ColBlock{}, binErrf("segment: truncated gap delta")
				}
				c = p[off]
				off++
				u |= uint64(c&0x7f) << shift
				if c < 0x80 {
					break
				}
			}
		}
		gap := prev + (int64(u>>1) ^ -int64(u&1))
		if gap < 0 {
			return ColBlock{}, binErrf("segment: %w", checkLimits(int64(bank), 0, gap))
		}
		prev = gap
		gaps[i] = dram.Time(gap)
	}
	br.prevGap[bank] = prev
	br.off = off
	br.blockDone(bank, count)
	return ColBlock{Bank: bank, Rows: rows, Gaps: gaps}, nil
}

// runList parses the segment's run list, validating it against segBlocks:
// every run must name a bank with a block in this segment, and per bank
// the run lengths must sum to exactly the block length. When collect is
// set the runs are appended to dst[:0] (ReadBinary needs them to
// reconstruct global order); the block-ingest path skips that. On any
// error the reader is poisoned — callers must not continue decoding.
func (br *BlockReader) runList(dst []run, collect bool) ([]run, error) {
	dst = dst[:0]
	nruns, err := br.uvarint("run count")
	if err != nil {
		return nil, err
	}
	if nruns == 0 || nruns > uint64(maxSegmentBytes) {
		return nil, binErrf("segment: bad run count %d", nruns)
	}
	// consumed is reused across segments (zeroed on every exit path below);
	// a dense slice beats a map at typical run counts — one short run per
	// couple of accesses.
	if br.consumed == nil {
		br.consumed = make([]int64, br.banks)
	}
	named := 0
	p, off := br.payload, br.off
	for i := uint64(0); i < nruns; i++ {
		var vals [2]uint64 // bank, length — same inline varint as decodeBlock
		for f := 0; f < 2; f++ {
			if off >= len(p) {
				return nil, binErrf("segment: truncated run list")
			}
			c := p[off]
			off++
			u := uint64(c)
			if c >= 0x80 {
				u &= 0x7f
				for shift := uint(7); ; shift += 7 {
					if off >= len(p) || shift > 63 {
						return nil, binErrf("segment: truncated run list")
					}
					c = p[off]
					off++
					u |= uint64(c&0x7f) << shift
					if c < 0x80 {
						break
					}
				}
			}
			vals[f] = u
		}
		bank64, length := vals[0], vals[1]
		if bank64 >= uint64(br.banks) {
			return nil, binErrf("segment: run for bank %d, header has %d banks", bank64, br.banks)
		}
		if length == 0 {
			return nil, binErrf("segment: zero-length run")
		}
		if br.consumed[bank64] == 0 {
			named++
		}
		br.consumed[bank64] += int64(length)
		if collect {
			dst = append(dst, run{bank: int(bank64), n: int64(length)})
		}
	}
	br.off = off
	if br.off != len(br.payload) {
		return nil, binErrf("segment: %d trailing bytes", len(br.payload)-br.off)
	}
	if named != len(br.segBlocks) {
		return nil, binErrf("segment: run list names %d banks, blocks cover %d", named, len(br.segBlocks))
	}
	for _, sb := range br.segBlocks {
		if br.consumed[sb.bank] != sb.count {
			return nil, binErrf("segment: runs replay %d accesses of bank %d, block carries %d", br.consumed[sb.bank], sb.bank, sb.count)
		}
	}
	// All named banks are segment banks (named == len(segBlocks) and every
	// segment bank is named with a non-zero count), so this zeroes the
	// whole slice back for the next segment.
	for _, sb := range br.segBlocks {
		br.consumed[sb.bank] = 0
	}
	br.segments++
	if br.OnSegment != nil {
		if err := br.OnSegment(br.payload); err != nil {
			return nil, binErrf("segment hook: %w", err)
		}
	}
	br.segOpen = false
	br.payload = br.payload[:0]
	return dst, nil
}

type run struct {
	bank int
	n    int64
}

// ReadBinary reads a complete binary trace from r, reconstructing the
// exact global access order from the per-segment run lists, so a
// text→binary→text round trip is byte-identical modulo header
// sanitization.
func ReadBinary(r io.Reader) (*Trace, error) {
	br, err := NewBlockReader(r)
	if err != nil {
		return nil, err
	}
	prealloc := br.total
	if prealloc > 1<<20 {
		prealloc = 1 << 20 // cap what a hostile header can make us allocate up front
	}
	out := make([]Access, 0, prealloc)
	// Per-bank pending accesses of the open segment, with a read cursor per
	// bank, and a pool recycling the block buffers across segments so the
	// steady state allocates nothing per block.
	cols := make([][]Access, br.banks)
	cur := make([]int64, br.banks)
	var pool [][]Access
	var runs []run
	for {
		if br.blocksLeft > 0 {
			var buf []Access
			if n := len(pool); n > 0 {
				buf, pool = pool[n-1], pool[:n-1]
			}
			blk, err := br.decodeBlock(buf)
			if err != nil {
				return nil, err
			}
			cols[blk.Bank] = blk.Accs
			continue
		}
		if br.segOpen {
			// Segment complete: apply its runs to recover global order.
			// runList guarantees every run's bank has a block in this
			// segment and the per-bank run lengths sum to exactly the block
			// lengths, so the copies below can never run past a column.
			segAccs := br.segAccs
			runs, err = br.runList(runs, true)
			if err != nil {
				return nil, err
			}
			// Grow once for the whole segment, then place each run with an
			// element loop: typical runs are a handful of accesses, where
			// the per-append grow checks and memmove calls dominate.
			base := len(out)
			for int64(cap(out)-base) < segAccs {
				out = append(out[:cap(out)], Access{})
			}
			out = out[:base+int(segAccs)]
			for _, ru := range runs {
				col := cols[ru.bank]
				c := cur[ru.bank]
				for i := int64(0); i < ru.n; i++ {
					out[base] = col[c+i]
					base++
				}
				cur[ru.bank] = c + ru.n
			}
			for _, sb := range br.segBlocks {
				if cur[sb.bank] != sb.count { // invariant, per runList above
					return nil, binErrf("segment: runs replay %d accesses of bank %d, block carries %d", cur[sb.bank], sb.bank, sb.count)
				}
				pool = append(pool, cols[sb.bank])
				cols[sb.bank] = nil
				cur[sb.bank] = 0
			}
			continue
		}
		if err := br.nextSegment(); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
	}
	return &Trace{Name: br.name, Accs: out}, nil
}

// ---------------------------------------------------------- auto-detect

// ReadAuto reads a trace in either format, sniffing the binary magic and
// falling back to the text parser. fallbackName applies only to text
// traces without a header line (the binary header always carries a name).
func ReadAuto(r io.Reader, fallbackName string) (*Trace, error) {
	src := bufio.NewReader(r)
	if IsBinary(src) {
		return ReadBinary(src)
	}
	return ReadAll(src, fallbackName)
}

// LoadFile reads a trace file in either format. The fallback name for
// headerless text traces is the file's base name.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAuto(f, filepath.Base(path))
}
