package trace

import (
	"testing"
)

func TestFromSliceReplaysInOrder(t *testing.T) {
	acc := []Access{{Bank: 0, Row: 1}, {Bank: 1, Row: 2}, {Bank: 0, Row: 3}}
	g := FromSlice("x", acc)
	if g.Name() != "x" {
		t.Errorf("Name = %q", g.Name())
	}
	got := Collect(g)
	if len(got) != 3 {
		t.Fatalf("collected %d, want 3", len(got))
	}
	for i := range acc {
		if got[i] != acc[i] {
			t.Errorf("access %d = %+v, want %+v", i, got[i], acc[i])
		}
	}
	// Exhausted generator keeps returning ok=false.
	if _, ok := g.Next(); ok {
		t.Error("exhausted generator returned ok")
	}
}

func TestLimitCapsStream(t *testing.T) {
	n := 0
	g := FromFunc("inf", func() (Access, bool) {
		n++
		return Access{Row: n}, true
	})
	got := Collect(Limit(g, 5))
	if len(got) != 5 {
		t.Errorf("Limit(5) yielded %d", len(got))
	}
}

func TestLimitShorterStream(t *testing.T) {
	g := FromSlice("s", []Access{{Row: 1}})
	if got := Collect(Limit(g, 10)); len(got) != 1 {
		t.Errorf("Limit beyond end yielded %d", len(got))
	}
}

func TestConcatChains(t *testing.T) {
	a := FromSlice("a", []Access{{Row: 1}, {Row: 2}})
	b := FromSlice("b", []Access{{Row: 3}})
	g := Concat("ab", a, b)
	got := Collect(g)
	if len(got) != 3 || got[2].Row != 3 {
		t.Errorf("Concat yielded %+v", got)
	}
	if g.Name() != "ab" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestConcatEmpty(t *testing.T) {
	if got := Collect(Concat("none")); len(got) != 0 {
		t.Errorf("empty Concat yielded %d", len(got))
	}
}
