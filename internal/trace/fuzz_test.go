package trace

import (
	"strings"
	"testing"
)

// FuzzReadFrom hardens the trace parser: arbitrary input must either parse
// cleanly or return an error — never panic — and whatever parses must
// survive a write/read round trip.
func FuzzReadFrom(f *testing.F) {
	f.Add("# trace x\n0 5 0\n1 6 100\n")
	f.Add("0 5")
	f.Add("")
	f.Add("# only comments\n\n#\n")
	f.Add("999999999999999999999 2 3\n")
	f.Add("0 5 10 junk\n")
	f.Add("\n# trace late header\n0 1 2\n")
	f.Add("# c\n# trace name\n0 1 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		gen, err := ReadFrom(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		accs := Collect(gen)
		for _, a := range accs {
			if a.Bank < 0 || a.Row < 0 || a.Gap < 0 {
				t.Fatalf("parser admitted negative field: %+v", a)
			}
		}
		// Round trip.
		var sb strings.Builder
		n, err := WriteTo(&sb, FromSlice("rt", accs))
		if err != nil || n != int64(len(accs)) {
			t.Fatalf("write failed: n=%d err=%v", n, err)
		}
		back, err := ReadFrom(strings.NewReader(sb.String()), "rt")
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		got := Collect(back)
		if len(got) != len(accs) {
			t.Fatalf("round trip changed length: %d vs %d", len(got), len(accs))
		}
		for i := range got {
			if got[i] != accs[i] {
				t.Fatalf("round trip changed access %d: %+v vs %+v", i, got[i], accs[i])
			}
		}
	})
}
