package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// FuzzReadFrom hardens the trace parser: arbitrary input must either parse
// cleanly or return an error — never panic — and whatever parses must
// survive a write/read round trip.
func FuzzReadFrom(f *testing.F) {
	f.Add("# trace x\n0 5 0\n1 6 100\n")
	f.Add("0 5")
	f.Add("")
	f.Add("# only comments\n\n#\n")
	f.Add("999999999999999999999 2 3\n")
	f.Add("0 5 10 junk\n")
	f.Add("\n# trace late header\n0 1 2\n")
	f.Add("# c\n# trace name\n0 1 2\n")
	f.Fuzz(func(t *testing.T, src string) {
		gen, err := ReadFrom(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		accs := Collect(gen)
		name := gen.Name()
		for _, a := range accs {
			if a.Bank < 0 || a.Row < 0 || a.Gap < 0 {
				t.Fatalf("parser admitted negative field: %+v", a)
			}
		}
		// Round trip.
		var sb strings.Builder
		n, err := WriteTo(&sb, FromSlice("rt", accs))
		if err != nil || n != int64(len(accs)) {
			t.Fatalf("write failed: n=%d err=%v", n, err)
		}
		back, err := ReadFrom(strings.NewReader(sb.String()), "rt")
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		got := Collect(back)
		if len(got) != len(accs) {
			t.Fatalf("round trip changed length: %d vs %d", len(got), len(accs))
		}
		for i := range got {
			if got[i] != accs[i] {
				t.Fatalf("round trip changed access %d: %+v vs %+v", i, got[i], accs[i])
			}
		}

		// Binary↔text equivalence: whatever the text reference parses, the
		// binary codec must reproduce — name, length, and exact global order.
		// (A text header line can exceed the binary name limit; clamp, since
		// the name is not what this target is about.)
		if len(name) > MaxNameLen {
			name = name[:MaxNameLen]
		}
		var bb bytes.Buffer
		if _, err := WriteBinary(&bb, FromSlice(name, accs)); err != nil {
			t.Fatalf("WriteBinary rejected text-parsed trace: %v", err)
		}
		tr, err := ReadBinary(bytes.NewReader(bb.Bytes()))
		if err != nil {
			t.Fatalf("ReadBinary failed on own output: %v", err)
		}
		if tr.Name != name {
			t.Fatalf("binary round trip changed name: %q vs %q", tr.Name, name)
		}
		if len(tr.Accs) != len(accs) {
			t.Fatalf("binary round trip changed length: %d vs %d", len(tr.Accs), len(accs))
		}
		for i := range tr.Accs {
			if tr.Accs[i] != accs[i] {
				t.Fatalf("binary round trip changed access %d: %+v vs %+v", i, tr.Accs[i], accs[i])
			}
		}
		// The block reader's per-bank partition must match the reference's.
		want := map[int][]Access{}
		for _, a := range accs {
			want[a.Bank] = append(want[a.Bank], a)
		}
		br, err := NewBlockReader(bytes.NewReader(bb.Bytes()))
		if err != nil {
			t.Fatalf("NewBlockReader: %v", err)
		}
		got2 := map[int][]Access{}
		for {
			blk, err := br.Next(nil)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("BlockReader.Next: %v", err)
			}
			got2[blk.Bank] = append(got2[blk.Bank], blk.Accs...)
		}
		if len(got2) != len(want) {
			t.Fatalf("block partition covers %d banks, want %d", len(got2), len(want))
		}
		for bank, ws := range want {
			gs := got2[bank]
			if len(gs) != len(ws) {
				t.Fatalf("bank %d: blocks carry %d accesses, want %d", bank, len(gs), len(ws))
			}
			for i := range ws {
				if gs[i] != ws[i] {
					t.Fatalf("bank %d access %d: %+v vs %+v", bank, i, gs[i], ws[i])
				}
			}
		}
	})
}

// FuzzBinaryReader hardens the binary decoder: arbitrary bytes after the
// magic must either decode cleanly or error — never panic or over-allocate
// — and whatever decodes must re-encode to an equivalent trace.
func FuzzBinaryReader(f *testing.F) {
	seed := func(accs []Access) []byte {
		var bb bytes.Buffer
		if _, err := WriteBinary(&bb, FromSlice("seed", accs)); err != nil {
			f.Fatal(err)
		}
		return bb.Bytes()
	}
	f.Add(seed(nil))
	f.Add(seed([]Access{{Bank: 0, Row: 1, Gap: 2}}))
	f.Add(seed([]Access{{Bank: 1, Row: 9, Gap: 0}, {Bank: 0, Row: 3, Gap: 5}, {Bank: 1, Row: 9, Gap: 5}}))
	f.Add(seed([]Access{{Bank: 0, Row: 1, Gap: 2, Dwell: 31700}}))
	f.Add(seed([]Access{{Bank: 0, Row: 1, Gap: 2, Dwell: 63400}, {Bank: 1, Row: 2, Gap: 3}, {Bank: 0, Row: 1, Gap: 0, Dwell: 1}}))
	f.Add([]byte("RHTB1\n"))
	f.Add([]byte("RHTB1\n\x00\x00\x00"))
	f.Add([]byte("RHTB2\n"))
	f.Add([]byte("RHTB2\n\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var bb bytes.Buffer
		if _, err := WriteBinary(&bb, tr.Generator()); err != nil {
			t.Fatalf("re-encode of accepted trace failed: %v", err)
		}
		back, err := ReadBinary(bytes.NewReader(bb.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if back.Name != tr.Name || len(back.Accs) != len(tr.Accs) {
			t.Fatalf("re-round-trip changed shape: (%q, %d) vs (%q, %d)", back.Name, len(back.Accs), tr.Name, len(tr.Accs))
		}
		for i := range back.Accs {
			if back.Accs[i] != tr.Accs[i] {
				t.Fatalf("re-round-trip changed access %d", i)
			}
		}
	})
}

// FuzzWriteName: hostile names must never corrupt the text format — the
// written stream must parse, carry the same accesses, and exactly one
// header line.
func FuzzWriteName(f *testing.F) {
	f.Add("plain")
	f.Add("evil\n7 7 7")
	f.Add("a\r\nb")
	f.Add("# trace imposter")
	f.Add("\n\n\n")
	f.Fuzz(func(t *testing.T, name string) {
		in := []Access{{Bank: 1, Row: 2, Gap: 3}, {Bank: 0, Row: 9, Gap: 0}}
		var sb strings.Builder
		if _, err := WriteTo(&sb, FromSlice(name, in)); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		if got := strings.Count(sb.String(), "\n"); got != len(in)+1 {
			t.Fatalf("name %q injected lines: %d newlines, want %d", name, got, len(in)+1)
		}
		gen, err := ReadFrom(strings.NewReader(sb.String()), "fallback")
		if err != nil {
			t.Fatalf("written trace does not parse: %v", err)
		}
		out := Collect(gen)
		if len(out) != len(in) {
			t.Fatalf("name %q corrupted accesses: got %d, want %d", name, len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("access %d: %+v vs %+v", i, out[i], in[i])
			}
		}
	})
}
