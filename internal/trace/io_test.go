package trace

import (
	"strings"
	"testing"

	"graphene/internal/dram"
)

func TestWriteReadRoundTrip(t *testing.T) {
	in := []Access{
		{Bank: 0, Row: 100, Gap: 0},
		{Bank: 3, Row: 65535, Gap: 45000},
		{Bank: 1, Row: 0, Gap: 7_800_000},
	}
	var sb strings.Builder
	n, err := WriteTo(&sb, FromSlice("mytrace", in))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d accesses, want 3", n)
	}
	gen, err := ReadFrom(strings.NewReader(sb.String()), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if gen.Name() != "mytrace" {
		t.Errorf("name = %q, want mytrace", gen.Name())
	}
	out := Collect(gen)
	if len(out) != len(in) {
		t.Fatalf("read %d accesses, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("access %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestReadFromSkipsCommentsAndBlanks(t *testing.T) {
	src := `
# a comment
0 5 0

# another
1 6 100
`
	gen, err := ReadFrom(strings.NewReader(src), "x")
	if err != nil {
		t.Fatal(err)
	}
	out := Collect(gen)
	if len(out) != 2 || out[1].Row != 6 || out[1].Gap != dram.Time(100) {
		t.Errorf("parsed %+v", out)
	}
	if gen.Name() != "x" {
		t.Errorf("fallback name = %q", gen.Name())
	}
}

func TestReadFromRejectsMalformedLines(t *testing.T) {
	for _, src := range []string{
		"0 5", // too few fields
		"a b c",
		"-1 5 0", // negative bank
		"0 -5 0",
		"0 5 -1",
	} {
		if _, err := ReadFrom(strings.NewReader(src), "x"); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestWriteToEmptyTrace(t *testing.T) {
	var sb strings.Builder
	n, err := WriteTo(&sb, FromSlice("empty", nil))
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	gen, err := ReadFrom(strings.NewReader(sb.String()), "f")
	if err != nil {
		t.Fatal(err)
	}
	if got := Collect(gen); len(got) != 0 {
		t.Errorf("empty round trip yielded %d accesses", len(got))
	}
	if gen.Name() != "empty" {
		t.Errorf("name = %q", gen.Name())
	}
}
