package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"graphene/internal/dram"
)

// The on-disk trace format is line-oriented text, one access per line:
//
//	bank row gap_ps
//
// with '#' comment lines and blank lines ignored. The first comment line
// written by WriteTo records the trace name.

// WriteTo drains gen into w in the text trace format and returns the
// number of accesses written.
func WriteTo(w io.Writer, gen Generator) (n int64, err error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s\n", gen.Name()); err != nil {
		return 0, err
	}
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Bank, a.Row, int64(a.Gap)); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadFrom parses a text trace from r. The generator's name is taken from
// a leading "# trace <name>" comment when present, else fallbackName.
func ReadFrom(r io.Reader, fallbackName string) (Generator, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	name := fallbackName
	var accs []Access
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# trace "); ok && line == 1 {
				name = strings.TrimSpace(rest)
			}
			continue
		}
		var bank, row int
		var gap int64
		if _, err := fmt.Sscanf(text, "%d %d %d", &bank, &row, &gap); err != nil {
			return nil, fmt.Errorf("trace: line %d: %q: %w", line, text, err)
		}
		if bank < 0 || row < 0 || gap < 0 {
			return nil, fmt.Errorf("trace: line %d: negative field in %q", line, text)
		}
		accs = append(accs, Access{Bank: bank, Row: row, Gap: dram.Time(gap)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return FromSlice(name, accs), nil
}
