package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"graphene/internal/dram"
)

// The on-disk trace format is line-oriented text, one access per line:
//
//	bank row gap_ps
//
// with '#' comment lines and blank lines ignored. The first comment line
// written by WriteTo records the trace name.

// WriteTo drains gen into w in the text trace format and returns the
// number of accesses written.
func WriteTo(w io.Writer, gen Generator) (n int64, err error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s\n", gen.Name()); err != nil {
		return 0, err
	}
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", a.Bank, a.Row, int64(a.Gap)); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// ReadFrom parses a text trace from r. The generator's name is taken from
// the first "# trace <name>" comment appearing before any access line —
// blank lines and other comments may precede it — else fallbackName. A
// header after the first access is plain commentary and does not rename
// the trace. Access lines must be exactly three integer fields; extra
// fields are an error, not silently dropped.
func ReadFrom(r io.Reader, fallbackName string) (Generator, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	// A reader that fails mid-line makes the scanner emit the torn partial
	// line as its final token; blaming that debris for being malformed
	// buries the real failure. fail prefers the I/O error whenever the bad
	// line was the stream's last and the scanner stopped on an error.
	fail := func(perr error) error {
		if !sc.Scan() && sc.Err() != nil {
			return fmt.Errorf("trace: %w", sc.Err())
		}
		return perr
	}
	name := fallbackName
	named := false
	var accs []Access
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# trace "); ok && !named && len(accs) == 0 {
				name = strings.TrimSpace(rest)
				named = true
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fail(fmt.Errorf("trace: line %d: %q: want 3 fields (bank row gap_ps), got %d", line, text, len(fields)))
		}
		bank, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fail(fmt.Errorf("trace: line %d: %q: bad bank: %w", line, text, err))
		}
		row, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fail(fmt.Errorf("trace: line %d: %q: bad row: %w", line, text, err))
		}
		gap, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fail(fmt.Errorf("trace: line %d: %q: bad gap: %w", line, text, err))
		}
		if bank < 0 || row < 0 || gap < 0 {
			return nil, fail(fmt.Errorf("trace: line %d: negative field in %q", line, text))
		}
		accs = append(accs, Access{Bank: bank, Row: row, Gap: dram.Time(gap)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return FromSlice(name, accs), nil
}
