package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"graphene/internal/dram"
)

// The on-disk trace format is line-oriented text, one access per line:
//
//	bank row gap_ps [dwell_ps]
//
// with '#' comment lines and blank lines ignored. The fourth field is the
// open-row dwell; absent means the device minimum (nRAS), so every
// pre-dwell trace parses unchanged, and WriteTo only emits it on accesses
// that carry one. The first comment line written by WriteTo records the
// trace name. A compact binary alternative lives in binary.go; ReadAuto
// distinguishes the two by the binary magic.

// Shared field limits. Both codecs enforce the same ranges, so a trace
// that one reader accepts is never rejected by the other, and parse
// results cannot depend on the platform's int width (the text reader used
// to parse bank/row with platform-width Atoi, so a row valid under the
// 64-bit binary codec overflowed the text reader on 32-bit builds with an
// inconsistent error).
const (
	// MaxBank bounds the flat bank index. Far above any real geometry
	// (Default() has 64 banks), yet small enough that a hostile trace
	// cannot make per-bank bookkeeping allocate gigabytes.
	MaxBank = 1<<20 - 1

	// MaxRow bounds the row index within a bank: it must fit int32 so
	// Access.Row means the same thing on 32- and 64-bit builds.
	MaxRow = 1<<31 - 1

	// MaxGap bounds the think-time gap (any non-negative int64).
	MaxGap = math.MaxInt64

	// MaxDwell bounds the open-row dwell (any non-negative int64; 0 means
	// the device minimum, nRAS).
	MaxDwell = math.MaxInt64

	// MaxLineBytes bounds one text line (access or comment). The previous
	// silent 1 MB scanner cap failed over-long lines with a bare
	// "token too long" carrying no position; the limit is now explicit and
	// the error names the offending line.
	MaxLineBytes = 4 << 20
)

// checkLimits validates one parsed access against the shared limits. The
// error names the field and its legal range; callers wrap it with
// position context (text line or binary offset).
func checkLimits(bank, row, gap int64) error {
	switch {
	case bank < 0 || bank > MaxBank:
		return fmt.Errorf("bank %d out of range [0, %d]", bank, int64(MaxBank))
	case row < 0 || row > MaxRow:
		return fmt.Errorf("row %d out of range [0, %d]", row, int64(MaxRow))
	case gap < 0:
		return fmt.Errorf("gap %d out of range [0, %d]", gap, int64(MaxGap))
	}
	return nil
}

// checkDwell validates an open-row dwell against the shared limits; like
// checkLimits, callers wrap the error with position context.
func checkDwell(dwell int64) error {
	if dwell < 0 {
		return fmt.Errorf("dwell %d out of range [0, %d]", dwell, int64(MaxDwell))
	}
	return nil
}

// sanitizeName makes a trace name safe to interpolate into the single-line
// text header: line breaks collapse to spaces, so a hostile generator name
// cannot inject extra lines (including fake access lines) into the trace.
// ReadFrom additionally trims surrounding whitespace on the way back in.
func sanitizeName(name string) string {
	if !strings.ContainsAny(name, "\r\n") {
		return name
	}
	return strings.Map(func(r rune) rune {
		if r == '\n' || r == '\r' {
			return ' '
		}
		return r
	}, name)
}

// WriteTo drains gen into w in the text trace format and returns the
// number of accesses written. The name goes into a "# trace <name>"
// header with line breaks replaced by spaces (see sanitizeName).
func WriteTo(w io.Writer, gen Generator) (n int64, err error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# trace %s\n", sanitizeName(gen.Name())); err != nil {
		return 0, err
	}
	for {
		a, ok := gen.Next()
		if !ok {
			break
		}
		if err := checkLimits(int64(a.Bank), int64(a.Row), int64(a.Gap)); err != nil {
			return n, fmt.Errorf("trace: access %d: %w", n, err)
		}
		if err := checkDwell(int64(a.Dwell)); err != nil {
			return n, fmt.Errorf("trace: access %d: %w", n, err)
		}
		if a.Dwell != 0 {
			_, err = fmt.Fprintf(bw, "%d %d %d %d\n", a.Bank, a.Row, int64(a.Gap), int64(a.Dwell))
		} else {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", a.Bank, a.Row, int64(a.Gap))
		}
		if err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// Trace is a fully-materialized activation stream: what the file readers
// produce. Accs is shared, not copied — callers that replay it through
// Generator() must treat it as read-only.
type Trace struct {
	Name string
	Accs []Access
}

// Generator returns a fresh single-use Generator over the trace. Multiple
// calls return independent cursors over the shared backing slice.
func (t *Trace) Generator() Generator { return FromSlice(t.Name, t.Accs) }

// Dims scans the trace and returns the smallest geometry that fits it:
// max bank + 1 and max row + 1 (both 0 for an empty trace).
func (t *Trace) Dims() (banks, rows int) {
	for _, a := range t.Accs {
		if a.Bank >= banks {
			banks = a.Bank + 1
		}
		if a.Row >= rows {
			rows = a.Row + 1
		}
	}
	return banks, rows
}

// ReadFrom parses a text trace from r. The generator's name is taken from
// the first "# trace <name>" comment appearing before any access line —
// blank lines and other comments may precede it — else fallbackName. A
// header after the first access is plain commentary and does not rename
// the trace. Access lines must be exactly three or four integer fields
// (the fourth is the open-row dwell); anything else is an error, not
// silently dropped.
func ReadFrom(r io.Reader, fallbackName string) (Generator, error) {
	t, err := ReadAll(r, fallbackName)
	if err != nil {
		return nil, err
	}
	return t.Generator(), nil
}

// ReadAll is ReadFrom returning the materialized *Trace instead of a
// Generator cursor over it — the form callers use when they also need the
// access slice (for geometry sizing) without draining-and-copying the
// generator a second time.
func ReadAll(r io.Reader, fallbackName string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), MaxLineBytes)
	line := 0
	// scanErr classifies the scanner's stop condition: an over-long line
	// is blamed on its line number and the documented limit, any other
	// error is the underlying reader's.
	scanErr := func() error {
		err := sc.Err()
		if err == nil {
			return nil
		}
		if errors.Is(err, bufio.ErrTooLong) {
			return fmt.Errorf("trace: line %d: line exceeds %d bytes: %w", line+1, MaxLineBytes, err)
		}
		return fmt.Errorf("trace: %w", err)
	}
	// A reader that fails mid-line makes the scanner emit the torn partial
	// line as its final token; blaming that debris for being malformed
	// buries the real failure. fail prefers the I/O error whenever the bad
	// line was the stream's last and the scanner stopped on an error — but
	// not an over-long *later* line, which is a separate problem from the
	// parse error already in hand.
	fail := func(perr error) error {
		if !sc.Scan() {
			if err := sc.Err(); err != nil && !errors.Is(err, bufio.ErrTooLong) {
				return fmt.Errorf("trace: %w", err)
			}
		}
		return perr
	}
	name := fallbackName
	named := false
	var accs []Access
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# trace "); ok && !named && len(accs) == 0 {
				name = strings.TrimSpace(rest)
				named = true
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 && len(fields) != 4 {
			return nil, fail(fmt.Errorf("trace: line %d: %q: want 3 or 4 fields (bank row gap_ps [dwell_ps]), got %d", line, text, len(fields)))
		}
		bank, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fail(fmt.Errorf("trace: line %d: %q: bad bank: %w", line, text, err))
		}
		row, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fail(fmt.Errorf("trace: line %d: %q: bad row: %w", line, text, err))
		}
		gap, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fail(fmt.Errorf("trace: line %d: %q: bad gap: %w", line, text, err))
		}
		if err := checkLimits(bank, row, gap); err != nil {
			return nil, fail(fmt.Errorf("trace: line %d: %q: %w", line, text, err))
		}
		var dwell int64
		if len(fields) == 4 {
			dwell, err = strconv.ParseInt(fields[3], 10, 64)
			if err != nil {
				return nil, fail(fmt.Errorf("trace: line %d: %q: bad dwell: %w", line, text, err))
			}
			if err := checkDwell(dwell); err != nil {
				return nil, fail(fmt.Errorf("trace: line %d: %q: %w", line, text, err))
			}
		}
		accs = append(accs, Access{Bank: int(bank), Row: int(row), Gap: dram.Time(gap), Dwell: dram.Time(dwell)})
	}
	if err := scanErr(); err != nil {
		return nil, err
	}
	return &Trace{Name: name, Accs: accs}, nil
}
