package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"

	"graphene/internal/dram"
)

// mixedTrace builds a deterministic multi-bank trace with bursty bank
// runs, zero and large gaps, and rows jumping both directions — the
// shapes the delta encoder must survive.
func mixedTrace(n, banks int, seed int64) []Access {
	rng := rand.New(rand.NewSource(seed))
	accs := make([]Access, 0, n)
	for len(accs) < n {
		bank := rng.Intn(banks)
		run := 1 + rng.Intn(5)
		for r := 0; r < run && len(accs) < n; r++ {
			acc := Access{Bank: bank, Row: rng.Intn(1 << 16)}
			switch rng.Intn(3) {
			case 0: // back-to-back
			case 1:
				acc.Gap = dram.Time(rng.Intn(100_000))
			default:
				acc.Gap = dram.Time(rng.Int63n(int64(1) << 40))
			}
			accs = append(accs, acc)
		}
	}
	return accs
}

func encodeBinary(t testing.TB, name string, accs []Access) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := WriteBinary(&buf, FromSlice(name, accs))
	if err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	if n != int64(len(accs)) {
		t.Fatalf("WriteBinary wrote %d accesses, want %d", n, len(accs))
	}
	return buf.Bytes()
}

func TestBinaryRoundTripExactOrder(t *testing.T) {
	cases := map[string][]Access{
		"empty":       nil,
		"single":      {{Bank: 0, Row: 42, Gap: 7}},
		"single-bank": mixedTrace(5000, 1, 1),
		"multi-bank":  mixedTrace(20_000, 7, 2),
		"many-banks":  mixedTrace(3000, 64, 3),
		// More accesses than one segment holds: delta state and run
		// reconstruction must survive segment boundaries.
		"multi-segment": mixedTrace(segmentAccs*2+123, 5, 4),
	}
	for name, accs := range cases {
		t.Run(name, func(t *testing.T) {
			data := encodeBinary(t, "rt-"+name, accs)
			tr, err := ReadBinary(bytes.NewReader(data))
			if err != nil {
				t.Fatalf("ReadBinary: %v", err)
			}
			if tr.Name != "rt-"+name {
				t.Errorf("name = %q, want %q", tr.Name, "rt-"+name)
			}
			if len(tr.Accs) != len(accs) {
				t.Fatalf("decoded %d accesses, want %d", len(tr.Accs), len(accs))
			}
			for i := range accs {
				if tr.Accs[i] != accs[i] {
					t.Fatalf("access %d = %+v, want %+v", i, tr.Accs[i], accs[i])
				}
			}
		})
	}
}

func TestBinaryPreservesHostileName(t *testing.T) {
	// The binary header is length-prefixed, so names the text format must
	// sanitize survive verbatim.
	name := "evil\n7 7 7\n# trace imposter"
	data := encodeBinary(t, name, []Access{{Bank: 0, Row: 1, Gap: 2}})
	tr, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != name {
		t.Errorf("name = %q, want %q", tr.Name, name)
	}
}

func TestBlockReaderHeaderAndBlocks(t *testing.T) {
	accs := mixedTrace(10_000, 4, 9)
	data := encodeBinary(t, "blocks", accs)
	br, err := NewBlockReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if br.Name() != "blocks" || br.Banks() != 4 || br.Total() != int64(len(accs)) {
		t.Fatalf("header = (%q, %d, %d), want (blocks, 4, %d)", br.Name(), br.Banks(), br.Total(), len(accs))
	}
	// Blocks must reproduce exactly the per-bank partition, in per-bank
	// order — the only order replay observes.
	want := map[int][]Access{}
	for _, a := range accs {
		want[a.Bank] = append(want[a.Bank], a)
	}
	got := map[int][]Access{}
	var buf []Access
	for {
		blk, err := br.Next(buf[:0])
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if len(blk.Accs) == 0 {
			t.Fatal("empty block")
		}
		for _, a := range blk.Accs {
			if a.Bank != blk.Bank {
				t.Fatalf("block for bank %d carries access %+v", blk.Bank, a)
			}
			got[blk.Bank] = append(got[blk.Bank], a)
		}
		buf = blk.Accs // recycled: Next appends into buf[:0]
	}
	if len(got) != len(want) {
		t.Fatalf("blocks cover %d banks, want %d", len(got), len(want))
	}
	for bank, ws := range want {
		gs := got[bank]
		if len(gs) != len(ws) {
			t.Fatalf("bank %d: %d accesses, want %d", bank, len(gs), len(ws))
		}
		for i := range ws {
			if gs[i] != ws[i] {
				t.Fatalf("bank %d access %d = %+v, want %+v", bank, i, gs[i], ws[i])
			}
		}
	}
	// After EOF the reader stays at EOF.
	if _, err := br.Next(nil); err != io.EOF {
		t.Fatalf("post-EOF Next: %v", err)
	}
}

func TestBinaryRejectsTornTail(t *testing.T) {
	accs := mixedTrace(segmentAccs+500, 3, 5) // two segments
	data := encodeBinary(t, "torn", accs)
	// Every proper prefix must fail — never parse as a silently shorter
	// trace. Step through a spread of cut points including all short ones.
	cuts := []int{0, 1, 3, 5}
	for c := 6; c < len(data)-1; c += 997 {
		cuts = append(cuts, c)
	}
	cuts = append(cuts, len(data)-1)
	for _, cut := range cuts {
		_, err := ReadBinary(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("accepted %d-byte prefix of %d-byte trace", cut, len(data))
		}
	}
	// The full stream still parses (the loop above must not be vacuous).
	if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
		t.Fatalf("full stream: %v", err)
	}
}

func TestBinaryRejectsCorruptStream(t *testing.T) {
	base := encodeBinary(t, "x", mixedTrace(100, 2, 6))
	mut := func(mutate func(d []byte)) error {
		d := append([]byte(nil), base...)
		mutate(d)
		_, err := ReadBinary(bytes.NewReader(d))
		return err
	}
	if err := mut(func(d []byte) { d[0] = 'X' }); !errors.Is(err, ErrNotBinary) {
		t.Errorf("bad magic: %v, want ErrNotBinary", err)
	}
	// Flip a byte mid-segment: either a decode error or a run/total
	// mismatch, but never a clean parse of different data length... a
	// value flip CAN decode to different-but-valid accesses (no checksum),
	// so only assert it never panics and the strict validators still run.
	for i := len(binaryMagic); i < len(base); i += 7 {
		_ = mut(func(d []byte) { d[i] ^= 0x80 })
	}
}

func TestWriteBinaryRejectsOutOfRange(t *testing.T) {
	cases := map[string][]Access{
		"bank": {{Bank: MaxBank + 1, Row: 0}},
		"row":  {{Bank: 0, Row: MaxRow + 1}},
		"gap":  {{Bank: 0, Row: 0, Gap: -1}},
	}
	for name, accs := range cases {
		var buf bytes.Buffer
		if _, err := WriteBinary(&buf, FromSlice("x", accs)); err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Errorf("%s: err = %v, want out-of-range", name, err)
		}
	}
	var buf bytes.Buffer
	if _, err := WriteBinary(&buf, FromSlice(strings.Repeat("n", MaxNameLen+1), nil)); err == nil {
		t.Error("accepted over-long name")
	}
}

func TestReadAutoDetectsFormat(t *testing.T) {
	accs := mixedTrace(500, 3, 7)

	var text strings.Builder
	if _, err := WriteTo(&text, FromSlice("auto", accs)); err != nil {
		t.Fatal(err)
	}
	bin := encodeBinary(t, "auto", accs)

	for name, src := range map[string]io.Reader{
		"text":   strings.NewReader(text.String()),
		"binary": bytes.NewReader(bin),
	} {
		tr, err := ReadAuto(src, "fallback")
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Name != "auto" || len(tr.Accs) != len(accs) {
			t.Fatalf("%s: (%q, %d accesses), want (auto, %d)", name, tr.Name, len(tr.Accs), len(accs))
		}
		for i := range accs {
			if tr.Accs[i] != accs[i] {
				t.Fatalf("%s: access %d = %+v, want %+v", name, i, tr.Accs[i], accs[i])
			}
		}
	}
}

// TestBinaryMatchesTextReader pins the two codecs to each other over a
// text fixture: parse text (reference), convert to binary, and require the
// binary reader to reproduce the reference stream exactly.
func TestBinaryMatchesTextReader(t *testing.T) {
	src := "# trace fixture\n0 5 0\n1 6 100\n1 7 0\n0 5 20\n2 70000 7800000\n"
	ref, err := ReadAll(strings.NewReader(src), "fb")
	if err != nil {
		t.Fatal(err)
	}
	data := encodeBinary(t, ref.Name, ref.Accs)
	tr, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != ref.Name || len(tr.Accs) != len(ref.Accs) {
		t.Fatalf("binary = (%q, %d), text = (%q, %d)", tr.Name, len(tr.Accs), ref.Name, len(ref.Accs))
	}
	for i := range ref.Accs {
		if tr.Accs[i] != ref.Accs[i] {
			t.Fatalf("access %d: binary %+v, text %+v", i, tr.Accs[i], ref.Accs[i])
		}
	}
}
