// Package trace defines the activation-stream vocabulary shared by the
// workload generators, the memory-controller simulator, and the tools: a
// trace is a finite sequence of row activations annotated with the bank
// they target and an optional think-time gap.
package trace

import "graphene/internal/dram"

// Access is one row activation request.
type Access struct {
	Bank int       // flat bank index (dram.BankID.Flat)
	Row  int       // row within the bank
	Gap  dram.Time // idle time the workload inserts before this access

	// Dwell is how long the activation holds its row open (the RowPress
	// tAggOn). Zero means the device minimum (nRAS): the value every
	// pre-dwell trace implicitly carries, and the value under which the
	// duration-weighted disturbance model reduces exactly to the legacy
	// per-ACT model.
	Dwell dram.Time
}

// Generator produces a finite access stream. Generators are single-use;
// build a fresh one per simulation run.
type Generator interface {
	// Name identifies the workload (used in reports).
	Name() string
	// Next returns the next access; ok is false when the stream ends.
	Next() (a Access, ok bool)
}

// sliceGen replays a fixed access slice.
type sliceGen struct {
	name string
	acc  []Access
	i    int
}

// FromSlice returns a Generator replaying the given accesses.
func FromSlice(name string, acc []Access) Generator {
	return &sliceGen{name: name, acc: acc}
}

func (g *sliceGen) Name() string { return g.name }

func (g *sliceGen) Next() (Access, bool) {
	if g.i >= len(g.acc) {
		return Access{}, false
	}
	a := g.acc[g.i]
	g.i++
	return a, true
}

// funcGen adapts a closure into a Generator.
type funcGen struct {
	name string
	next func() (Access, bool)
}

// FromFunc returns a Generator drawing accesses from next.
func FromFunc(name string, next func() (Access, bool)) Generator {
	return &funcGen{name: name, next: next}
}

func (g *funcGen) Name() string         { return g.name }
func (g *funcGen) Next() (Access, bool) { return g.next() }

// Limit caps g at n accesses.
func Limit(g Generator, n int64) Generator {
	var seen int64
	return FromFunc(g.Name(), func() (Access, bool) {
		if seen >= n {
			return Access{}, false
		}
		a, ok := g.Next()
		if ok {
			seen++
		}
		return a, ok
	})
}

// Collect drains g into a slice (tests and small tools only).
func Collect(g Generator) []Access {
	var out []Access
	for {
		a, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, a)
	}
}

// Concat chains generators end to end under a combined name.
func Concat(name string, gens ...Generator) Generator {
	i := 0
	return FromFunc(name, func() (Access, bool) {
		for i < len(gens) {
			if a, ok := gens[i].Next(); ok {
				return a, true
			}
			i++
		}
		return Access{}, false
	})
}
