package sched

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"graphene/internal/faultinject"
	"graphene/internal/obs"
)

// TestFaultInjectSchedWorkerError: an injected error at the worker fault
// point fails exactly one cell and aborts the sweep like an organic
// failure.
func TestFaultInjectSchedWorkerError(t *testing.T) {
	inj, err := faultinject.New("sched.job:error:2")
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(context.Context) error {
			ran.Add(1)
			return nil
		}}
	}
	err = Run(Options{Jobs: 1, Fault: inj}, jobs)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want an injected fault", err)
	}
	// Serial pool: cell 0 ran, cell 1 was killed before Do, the rest skipped.
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d cells ran, want 1", got)
	}
}

// TestFaultInjectSchedWorkerPanic: an injected panic at the worker fault
// point is recovered into a labeled PanicError naming the cell — the
// acceptance-criteria path "an injected worker panic fails only its cell".
func TestFaultInjectSchedWorkerPanic(t *testing.T) {
	inj, err := faultinject.New("sched.job:panic:3")
	if err != nil {
		t.Fatal(err)
	}
	out := make([]int, 8)
	err = Run(Options{Jobs: 1, Fault: inj}, squareJobs(out))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Label != "cell-2" {
		t.Fatalf("panic attributed to %q, want cell-2 (3rd job)", pe.Label)
	}
	if _, ok := pe.Value.(faultinject.PanicValue); !ok {
		t.Fatalf("recovered value %#v, want faultinject.PanicValue", pe.Value)
	}
	// Cells before the panic completed; cells after were skipped.
	if out[0] != 0 || out[1] != 1 {
		t.Fatalf("pre-panic cells did not run: %v", out)
	}
	if out[7] != 0 {
		t.Fatalf("post-panic cell ran after abort: %v", out)
	}
}

// TestFaultInjectRetryRecovers: a one-shot injected fault plus a retry
// policy yields a clean sweep, with the retry visible in the obs stream.
func TestFaultInjectRetryRecovers(t *testing.T) {
	inj, err := faultinject.New("sched.job:error:2")
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.New()
	var sink obs.Collect
	rec.SetSink(&sink)
	inj.SetRecorder(rec)
	out := make([]int, 4)
	err = Run(Options{Jobs: 1, Fault: inj, Obs: rec, Retry: RetryPolicy{MaxAttempts: 2}}, squareJobs(out))
	if err != nil {
		t.Fatalf("retried sweep failed: %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d after retry", i, v)
		}
	}
	snap := rec.Snapshot()
	if snap.Counters["cell_retries_total"] != 1 {
		t.Errorf("cell_retries_total = %d, want 1", snap.Counters["cell_retries_total"])
	}
	if snap.Counters["faults_injected_total"] != 1 {
		t.Errorf("faults_injected_total = %d, want 1", snap.Counters["faults_injected_total"])
	}
	if snap.Counters["cells_done_total"] != int64(len(out)) {
		t.Errorf("cells_done_total = %d, want %d", snap.Counters["cells_done_total"], len(out))
	}
	if snap.Counters["cell_errors_total"] != 0 {
		t.Errorf("cell_errors_total = %d, want 0 (the retry recovered)", snap.Counters["cell_errors_total"])
	}
	retries := sink.ByKind(obs.KindCellRetry)
	if len(retries) != 1 || retries[0].Label != "cell-1" || retries[0].Value != 2 {
		t.Errorf("cell_retry events = %+v", retries)
	}
	if got := sink.ByKind(obs.KindFaultInjected); len(got) != 1 || got[0].Label != faultinject.SiteSchedJob {
		t.Errorf("fault_injected events = %+v", got)
	}
}
