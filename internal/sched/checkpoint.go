package sched

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint is an append-only journal of completed sweep cells, keyed by
// an opaque cell-config hash chosen by the caller. A sweep records each
// cell's result as it completes; a restarted sweep opens the same file,
// looks every cell up, and re-runs only the ones missing — reassembling
// output identical to an uninterrupted run.
//
// The on-disk format is JSON lines, one {"key": ..., "val": ...} object
// per record. Each Record is one atomic append under a lock, so the only
// damage a mid-write crash can leave is a truncated final line; loading
// tolerates that (and any other unparsable line) by skipping it — a
// skipped record merely costs recomputation of that cell. A nil
// *Checkpoint is valid and inert, so callers wire it unconditionally.
type Checkpoint struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]json.RawMessage
}

// checkpointLine is the journal's wire format.
type checkpointLine struct {
	Key string          `json:"key"`
	Val json.RawMessage `json:"val"`
}

// OpenCheckpoint opens (creating if needed) the journal at path and loads
// every intact record. Corrupt lines — typically one truncated tail line
// from a killed run — are skipped, not fatal.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sched: checkpoint: %w", err)
	}
	c := &Checkpoint{f: f, entries: map[string]json.RawMessage{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		var line checkpointLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil || line.Key == "" {
			continue // torn or foreign line: recompute that cell
		}
		c.entries[line.Key] = line.Val
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sched: checkpoint %s: %w", path, err)
	}
	// A killed run can leave the file without a trailing newline (a torn
	// final record). Terminate it now so the next append starts a fresh
	// line instead of gluing onto the debris.
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.Write([]byte("\n")); err != nil {
				f.Close()
				return nil, fmt.Errorf("sched: checkpoint %s: %w", path, err)
			}
		}
	}
	return c, nil
}

// Lookup unmarshals the journaled value for key into v and reports whether
// the key was present. Nil-safe (always false).
func (c *Checkpoint) Lookup(key string, v any) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	raw, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return false
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false // treat an undecodable record as absent: recompute
	}
	return true
}

// Record journals one completed cell. The write is a single append of the
// full line, serialized against concurrent recorders. Nil-safe (no-op).
func (c *Checkpoint) Record(key string, v any) error {
	if c == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sched: checkpoint: %w", err)
	}
	line, err := json.Marshal(checkpointLine{Key: key, Val: raw})
	if err != nil {
		return fmt.Errorf("sched: checkpoint: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sched: checkpoint: %w", err)
	}
	c.entries[key] = raw
	return nil
}

// Len returns the number of loaded and recorded cells (0 on nil).
func (c *Checkpoint) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Close releases the journal file. Nil-safe.
func (c *Checkpoint) Close() error {
	if c == nil || c.f == nil {
		return nil
	}
	return c.f.Close()
}
