package sched

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type ckptCell struct {
	Scheme string  `json:"scheme"`
	Value  float64 `json:"value"`
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("fresh checkpoint has %d entries", c.Len())
	}
	want := ckptCell{Scheme: "Graphene", Value: 0.25}
	if err := c.Record("k1", want); err != nil {
		t.Fatal(err)
	}
	var got ckptCell
	if !c.Lookup("k1", &got) || got != want {
		t.Fatalf("same-session lookup = %+v, %v", got, c.Lookup("k1", &got))
	}
	if c.Lookup("absent", &got) {
		t.Fatal("lookup of an absent key succeeded")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the record must survive the restart.
	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 1 {
		t.Fatalf("reloaded %d entries, want 1", c2.Len())
	}
	got = ckptCell{}
	if !c2.Lookup("k1", &got) || got != want {
		t.Fatalf("reloaded lookup = %+v", got)
	}
}

// TestCheckpointToleratesTornTailLine models a run killed mid-append: the
// torn final line is skipped, every intact record loads, and the journal
// stays appendable.
func TestCheckpointToleratesTornTailLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Record("a", ckptCell{Scheme: "x", Value: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Record("b", ckptCell{Scheme: "y", Value: 2}); err != nil {
		t.Fatal(err)
	}
	c.Close()

	// Simulate the crash: append half a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"c","val":{"sch`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 2 {
		t.Fatalf("loaded %d entries from a torn journal, want 2", c2.Len())
	}
	var got ckptCell
	if !c2.Lookup("b", &got) || got.Value != 2 {
		t.Fatalf("intact record lost: %+v", got)
	}
	if c2.Lookup("c", &got) {
		t.Fatal("torn record resolved")
	}
	// The journal remains usable after the torn line.
	if err := c2.Record("c", ckptCell{Scheme: "z", Value: 3}); err != nil {
		t.Fatal(err)
	}
	c2.Close()
	c3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Len() != 3 {
		t.Fatalf("post-repair journal has %d entries, want 3", c3.Len())
	}
}

func TestCheckpointNilIsInert(t *testing.T) {
	var c *Checkpoint
	if c.Lookup("k", &struct{}{}) {
		t.Error("nil Lookup returned true")
	}
	if err := c.Record("k", 1); err != nil {
		t.Errorf("nil Record = %v", err)
	}
	if c.Len() != 0 {
		t.Errorf("nil Len = %d", c.Len())
	}
	if err := c.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
}

func TestCheckpointConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := c.Record(string(rune('a'+i%26))+string(rune('0'+i/26)), ckptCell{Value: float64(i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	c.Close()
	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != n {
		t.Fatalf("reloaded %d entries, want %d", c2.Len(), n)
	}
}
