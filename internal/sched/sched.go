// Package sched is the sweep execution engine: it runs independent
// simulation cells (workload × scheme × threshold jobs) on a bounded worker
// pool and reassembles their results deterministically.
//
// The contract that makes parallel sweeps safe is in the caller's hands:
// each Job writes only into slots it owns (pre-allocated result cells), so
// output order is fixed at submission time and execution order never shows
// through. The pool adds robustness on top: the first failing job cancels
// the shared context and the remaining queued jobs are skipped, exactly
// like a serial loop returning early; a panicking job is recovered into a
// labeled error instead of crashing the process; an optional retry policy
// re-runs retryable failures with capped exponential backoff; and an
// optional parent context aborts the whole pool on cancellation or
// deadline. A progress callback supports live CLI reporting and is always
// terminated with one final notification, on completion and abort alike.
package sched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"graphene/internal/faultinject"
	"graphene/internal/obs"
)

// Progress is one completion notification: Done of Total cells have
// finished successfully (Failed more have failed), Cell names the one that
// just completed, and Elapsed is the wall clock since Run started.
// Callbacks arrive serialized and Done is strictly increasing, so a
// reporter can render a live status line without its own locking. After
// the pool drains — whether the sweep completed or aborted — exactly one
// final callback arrives with Final set and Err carrying the run's
// outcome, so a reporter can always terminate its output.
type Progress struct {
	Done    int
	Failed  int
	Total   int
	Cell    string
	Elapsed time.Duration

	// Final marks the single post-drain notification (Cell is empty).
	Final bool

	// Err is the pool's return value; only meaningful when Final is set.
	Err error
}

// RetryPolicy re-runs failed jobs. The zero value disables retries.
type RetryPolicy struct {
	// MaxAttempts bounds the total executions of one job (1 or less means
	// a single attempt, i.e. no retries).
	MaxAttempts int

	// BaseDelay is the wait before the first retry; each further retry
	// doubles it, capped at MaxDelay (which defaults to 1s when unset and
	// BaseDelay is positive). Zero means immediate retries. The waits are
	// deterministic — no jitter — so retried sweeps stay reproducible.
	BaseDelay time.Duration
	MaxDelay  time.Duration

	// Retryable classifies errors; nil retries everything except panics.
	// Context cancellation (context.Canceled / DeadlineExceeded) is never
	// retried regardless — an aborting pool must not respawn work.
	Retryable func(error) bool
}

// retryable reports whether the policy re-runs a job that failed with err.
func (p RetryPolicy) retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	var pe *PanicError
	return !errors.As(err, &pe)
}

// delay returns the backoff before retry number n (1-based).
func (p RetryPolicy) delay(n int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	cap := p.MaxDelay
	if cap <= 0 {
		cap = time.Second
	}
	d := p.BaseDelay
	for i := 1; i < n; i++ {
		d *= 2
		if d >= cap {
			return cap
		}
	}
	if d > cap {
		d = cap
	}
	return d
}

// Options configures a pool run.
type Options struct {
	// Jobs bounds the number of workers; 0 (or negative) uses
	// runtime.GOMAXPROCS(0). The worker count never affects results, only
	// wall clock.
	Jobs int

	// Ctx, when non-nil, is the parent context: cancelling it (or its
	// deadline passing) aborts the pool like a failing job — in-flight
	// cells drain, queued cells are skipped — and Run returns the
	// context's error if no job failed first. Nil means no external
	// cancellation.
	Ctx context.Context

	// Progress, when non-nil, is invoked after every successfully
	// completed job and once more with Final set after the pool drains.
	// It is called with the pool's bookkeeping lock held: keep it fast and
	// never call back into the pool from it.
	Progress func(Progress)

	// Retry re-runs failed jobs; the zero value runs each job once.
	Retry RetryPolicy

	// Fault, when non-nil, is hit at faultinject.SiteSchedJob once per job
	// attempt, before the job runs — the hook the fault-injection suite
	// uses to exercise the abort, retry, and drain paths.
	Fault *faultinject.Injector

	// Obs, when non-nil, receives one cell_start/cell_finish event pair
	// per executed job (skipped jobs emit nothing) with a cell_retry event
	// per re-attempt, the "cells_done_total" / "cell_errors_total" /
	// "cell_retries_total" counters, and the "cells_running" gauge. Unlike
	// Progress, events carry the failure detail, so an aborted sweep's
	// event stream names the cell that killed it.
	Obs *obs.Recorder
}

// Job is one independent unit of work. Do receives a context that is
// cancelled when another job fails; long-running jobs waiting on shared
// resources should select on ctx.Done() so an aborting pool cannot
// deadlock.
type Job struct {
	Label string
	Do    func(ctx context.Context) error
}

// PanicError is a recovered job panic, converted into an error that names
// the cell so one bad cell fails its sweep with context instead of
// crashing the whole process.
type PanicError struct {
	Label string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: panic in cell %q: %v", e.Label, e.Value)
}

// execJob runs one attempt of a job, converting a panic into a
// *PanicError and applying the fault-injection hook.
func execJob(ctx context.Context, fault *faultinject.Injector, job Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Label: job.Label, Value: r, Stack: debug.Stack()}
		}
	}()
	if err := fault.Hit(faultinject.SiteSchedJob); err != nil {
		return err
	}
	return job.Do(ctx)
}

// Run executes the jobs on a bounded worker pool and blocks until every
// started job has finished. Workers pull jobs in submission order, so with
// Jobs = 1 execution is exactly the serial loop. On failure the
// lowest-index error observed is returned, in-flight jobs run to
// completion, and queued jobs are skipped; if the parent context aborts
// the run before every job completed, its error is returned instead.
func Run(opts Options, jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := opts.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	parent := opts.Ctx
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	queue := make(chan int, len(jobs))
	for i := range jobs {
		queue <- i
	}
	close(queue)

	var (
		mu       sync.Mutex
		done     int
		failed   int
		errIdx   = len(jobs)
		firstErr error
		start    = time.Now()
		wg       sync.WaitGroup

		running = opts.Obs.Gauge("cells_running")
		doneC   = opts.Obs.Counter("cells_done_total")
		errC    = opts.Obs.Counter("cell_errors_total")
		retryC  = opts.Obs.Counter("cell_retries_total")
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if ctx.Err() != nil {
					return // aborted: skip everything still queued
				}
				opts.Obs.Emit(obs.Event{Kind: obs.KindCellStart, Bank: -1, Label: jobs[i].Label})
				running.Add(1)
				cellStart := time.Now()
				err := execJob(ctx, opts.Fault, jobs[i])
				for retry := 1; err != nil && retry < opts.Retry.MaxAttempts &&
					opts.Retry.retryable(err) && ctx.Err() == nil; retry++ {
					retryC.Inc()
					opts.Obs.Emit(obs.Event{
						Kind: obs.KindCellRetry, Bank: -1, Label: jobs[i].Label,
						Value: int64(retry + 1), Detail: err.Error(),
					})
					if d := opts.Retry.delay(retry); d > 0 {
						t := time.NewTimer(d)
						select {
						case <-ctx.Done():
							t.Stop()
						case <-t.C:
						}
						if ctx.Err() != nil {
							break // aborted mid-backoff: the last error stands
						}
					}
					err = execJob(ctx, opts.Fault, jobs[i])
				}
				running.Add(-1)
				fin := obs.Event{
					Kind: obs.KindCellFinish, Bank: -1, Label: jobs[i].Label,
					Value: time.Since(cellStart).Microseconds(),
				}
				if err != nil {
					fin.Detail = err.Error()
					errC.Inc()
				} else {
					doneC.Inc()
				}
				opts.Obs.Emit(fin)
				mu.Lock()
				if err != nil {
					failed++
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					continue
				}
				done++
				if opts.Progress != nil {
					opts.Progress(Progress{
						Done: done, Failed: failed, Total: len(jobs),
						Cell: jobs[i].Label, Elapsed: time.Since(start),
					})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr == nil && done < len(jobs) {
		// No job failed but not every job ran: the parent context aborted
		// the pool. Report its error so a cancelled sweep is never mistaken
		// for a complete one.
		firstErr = parent.Err()
	}
	if opts.Progress != nil {
		opts.Progress(Progress{
			Done: done, Failed: failed, Total: len(jobs),
			Elapsed: time.Since(start), Final: true, Err: firstErr,
		})
	}
	return firstErr
}

// Reporter returns a Progress callback rendering a live single-line status
// to w (stderr in the CLIs): the line is redrawn in place with \r and
// finished with a newline on the final notification — on abort as well as
// completion, so an error message never lands on a stale progress line.
func Reporter(w io.Writer) func(Progress) {
	open := false
	return func(p Progress) {
		if p.Final {
			if open {
				fmt.Fprintln(w)
				open = false
			}
			return
		}
		fmt.Fprintf(w, "\r%d/%d cells  %-44.44s  %s ",
			p.Done, p.Total, p.Cell, p.Elapsed.Round(time.Millisecond))
		open = true
	}
}
