// Package sched is the sweep execution engine: it runs independent
// simulation cells (workload × scheme × threshold jobs) on a bounded worker
// pool and reassembles their results deterministically.
//
// The contract that makes parallel sweeps safe is in the caller's hands:
// each Job writes only into slots it owns (pre-allocated result cells), so
// output order is fixed at submission time and execution order never shows
// through. The pool adds cancellation — the first failing job cancels the
// shared context and the remaining queued jobs are skipped, exactly like a
// serial loop returning early — and a progress callback for live CLI
// reporting.
package sched

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"graphene/internal/obs"
)

// Progress is one completion notification: Done of Total cells have
// finished, Cell names the one that just completed, and Elapsed is the
// wall clock since Run started. Callbacks arrive serialized and Done is
// strictly increasing, so a reporter can render a live status line without
// its own locking.
type Progress struct {
	Done    int
	Total   int
	Cell    string
	Elapsed time.Duration
}

// Options configures a pool run.
type Options struct {
	// Jobs bounds the number of workers; 0 (or negative) uses
	// runtime.GOMAXPROCS(0). The worker count never affects results, only
	// wall clock.
	Jobs int

	// Progress, when non-nil, is invoked after every completed job. It is
	// called with the pool's bookkeeping lock held: keep it fast and never
	// call back into the pool from it.
	Progress func(Progress)

	// Obs, when non-nil, receives one cell_start/cell_finish event pair
	// per executed job (skipped jobs emit nothing), the
	// "cells_done_total" / "cell_errors_total" counters, and the
	// "cells_running" gauge. Unlike Progress, events carry the failure
	// detail, so an aborted sweep's event stream names the cell that
	// killed it.
	Obs *obs.Recorder
}

// Job is one independent unit of work. Do receives a context that is
// cancelled when another job fails; long-running jobs waiting on shared
// resources should select on ctx.Done() so an aborting pool cannot
// deadlock.
type Job struct {
	Label string
	Do    func(ctx context.Context) error
}

// Run executes the jobs on a bounded worker pool and blocks until every
// started job has finished. Workers pull jobs in submission order, so with
// Jobs = 1 execution is exactly the serial loop. On failure the
// lowest-index error observed is returned, in-flight jobs run to
// completion, and queued jobs are skipped.
func Run(opts Options, jobs []Job) error {
	if len(jobs) == 0 {
		return nil
	}
	workers := opts.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	queue := make(chan int, len(jobs))
	for i := range jobs {
		queue <- i
	}
	close(queue)

	var (
		mu       sync.Mutex
		done     int
		errIdx   = len(jobs)
		firstErr error
		start    = time.Now()
		wg       sync.WaitGroup

		running = opts.Obs.Gauge("cells_running")
		doneC   = opts.Obs.Counter("cells_done_total")
		errC    = opts.Obs.Counter("cell_errors_total")
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				if ctx.Err() != nil {
					return // aborted: skip everything still queued
				}
				opts.Obs.Emit(obs.Event{Kind: obs.KindCellStart, Bank: -1, Label: jobs[i].Label})
				running.Add(1)
				cellStart := time.Now()
				err := jobs[i].Do(ctx)
				running.Add(-1)
				fin := obs.Event{
					Kind: obs.KindCellFinish, Bank: -1, Label: jobs[i].Label,
					Value: time.Since(cellStart).Microseconds(),
				}
				if err != nil {
					fin.Detail = err.Error()
					errC.Inc()
				} else {
					doneC.Inc()
				}
				opts.Obs.Emit(fin)
				mu.Lock()
				if err != nil {
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					continue
				}
				done++
				if opts.Progress != nil {
					opts.Progress(Progress{
						Done: done, Total: len(jobs),
						Cell: jobs[i].Label, Elapsed: time.Since(start),
					})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Reporter returns a Progress callback rendering a live single-line status
// to w (stderr in the CLIs): the line is redrawn in place with \r and
// finished with a newline when the last cell completes, so it never mixes
// into stdout table or JSON output.
func Reporter(w io.Writer) func(Progress) {
	return func(p Progress) {
		fmt.Fprintf(w, "\r%d/%d cells  %-44.44s  %s ",
			p.Done, p.Total, p.Cell, p.Elapsed.Round(time.Millisecond))
		if p.Done == p.Total {
			fmt.Fprintln(w)
		}
	}
}
