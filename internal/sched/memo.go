package sched

import (
	"context"
	"errors"
	"sync"
)

// MemoStats counts how a Memo was used: Misses is the number of distinct
// keys computed, Hits the number of lookups served from (or while waiting
// on) an existing entry.
type MemoStats struct {
	Hits   int64
	Misses int64
}

// Memo is a concurrency-safe, single-flight result cache. The sweeps use
// it to share one unprotected baseline run per workload across every
// (scheme, threshold) cell: the first cell to ask computes it, concurrent
// askers block on the same computation, and later askers get the stored
// value. Real errors are cached too — a failing baseline fails every
// dependent cell identically instead of being retried — but context
// cancellation (context.Canceled / DeadlineExceeded) is not: a baseline
// that was merely interrupted by an aborting sweep is recomputed on the
// next ask, so a resumed or retried sweep never re-fails from a stale
// cancellation.
type Memo[K comparable, V any] struct {
	mu    sync.Mutex
	m     map[K]*memoEntry[V]
	stats MemoStats
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Do returns the memoized value for k, computing it at most once across
// all callers.
func (m *Memo[K, V]) Do(k K, compute func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoEntry[V])
	}
	e, ok := m.m[k]
	if ok {
		m.stats.Hits++
	} else {
		m.stats.Misses++
		e = &memoEntry[V]{}
		m.m[k] = e
	}
	m.mu.Unlock()

	e.once.Do(func() { e.val, e.err = compute() })
	if e.err != nil && (errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded)) {
		// Drop the poisoned entry (concurrent askers already waiting on it
		// still observe the cancellation; the next Do computes afresh).
		m.mu.Lock()
		if m.m[k] == e {
			delete(m.m, k)
		}
		m.mu.Unlock()
	}
	return e.val, e.err
}

// Stats returns the hit/miss counters accumulated so far.
func (m *Memo[K, V]) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
