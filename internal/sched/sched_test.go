package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// squareJobs builds n jobs writing i*i into out[i].
func squareJobs(out []int) []Job {
	jobs := make([]Job, len(out))
	for i := range out {
		i := i
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(context.Context) error {
			out[i] = i * i
			return nil
		}}
	}
	return jobs
}

func TestRunAssemblesInSubmissionOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 0} {
		out := make([]int, 100)
		if err := Run(Options{Jobs: jobs}, squareJobs(out)); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if err := Run(Options{}, nil); err != nil {
		t.Fatal(err)
	}
	out := make([]int, 1)
	if err := Run(Options{Jobs: 16}, squareJobs(out)); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorAbortsQueuedJobs(t *testing.T) {
	const n = 64
	var ran atomic.Int64
	boom := errors.New("boom")
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(context.Context) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		}}
	}
	err := Run(Options{Jobs: 2}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool stops pulling after the failure: with 2 workers at most a
	// handful of jobs past the failing one can already be in flight.
	if got := ran.Load(); got > 8 {
		t.Errorf("%d jobs ran after early failure; pool did not abort", got)
	}
}

func TestErrorCancelsContextForInFlightJobs(t *testing.T) {
	// One job blocks on the context; another fails. The blocked job must be
	// released — a deadlock here hangs the test (and the sweep it models).
	release := make(chan struct{})
	jobs := []Job{
		{Label: "waiter", Do: func(ctx context.Context) error {
			close(release)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return errors.New("never cancelled")
			}
		}},
		{Label: "failer", Do: func(context.Context) error {
			<-release // ensure the waiter is already in flight
			return errors.New("boom")
		}},
	}
	err := Run(Options{Jobs: 2}, jobs)
	if err == nil || err.Error() != "boom" && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want boom or context.Canceled", err)
	}
}

func TestJobsOneIsSerialSubmissionOrder(t *testing.T) {
	var order []int
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{Do: func(context.Context) error {
			order = append(order, i) // safe: single worker
			return nil
		}}
	}
	if err := Run(Options{Jobs: 1}, jobs); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not submission order", order)
		}
	}
}

func TestProgressCallbacksAreOrderedAndComplete(t *testing.T) {
	const n = 50
	var got []Progress
	out := make([]int, n)
	err := Run(Options{Jobs: 8, Progress: func(p Progress) { got = append(got, p) }}, squareJobs(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("%d progress callbacks, want %d", len(got), n)
	}
	for i, p := range got {
		if p.Done != i+1 || p.Total != n {
			t.Fatalf("callback %d: Done/Total = %d/%d", i, p.Done, p.Total)
		}
		if !strings.HasPrefix(p.Cell, "cell-") {
			t.Fatalf("callback %d: Cell = %q", i, p.Cell)
		}
	}
}

func TestReporterEndsLineOnLastCell(t *testing.T) {
	var sb strings.Builder
	rep := Reporter(&sb)
	rep(Progress{Done: 1, Total: 2, Cell: "a"})
	if strings.Contains(sb.String(), "\n") {
		t.Error("newline before the last cell")
	}
	rep(Progress{Done: 2, Total: 2, Cell: "b"})
	if !strings.HasSuffix(sb.String(), "\n") {
		t.Error("missing final newline")
	}
	if !strings.Contains(sb.String(), "2/2 cells") {
		t.Errorf("unexpected reporter output %q", sb.String())
	}
}

func TestMemoSingleFlight(t *testing.T) {
	var m Memo[string, int]
	var computes atomic.Int64
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("base", func() (int, error) {
				computes.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("computed %d times, want 1", computes.Load())
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, callers-1)
	}
}

func TestMemoCachesErrors(t *testing.T) {
	var m Memo[int, int]
	boom := errors.New("boom")
	var computes int
	for i := 0; i < 3; i++ {
		_, err := m.Do(7, func() (int, error) { computes++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if computes != 1 {
		t.Errorf("failed compute retried %d times", computes)
	}
	if v, err := m.Do(8, func() (int, error) { return 8, nil }); v != 8 || err != nil {
		t.Errorf("independent key poisoned: %d, %v", v, err)
	}
}
