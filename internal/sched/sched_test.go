package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// squareJobs builds n jobs writing i*i into out[i].
func squareJobs(out []int) []Job {
	jobs := make([]Job, len(out))
	for i := range out {
		i := i
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(context.Context) error {
			out[i] = i * i
			return nil
		}}
	}
	return jobs
}

func TestRunAssemblesInSubmissionOrder(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 0} {
		out := make([]int, 100)
		if err := Run(Options{Jobs: jobs}, squareJobs(out)); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("jobs=%d: out[%d] = %d, want %d", jobs, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if err := Run(Options{}, nil); err != nil {
		t.Fatal(err)
	}
	out := make([]int, 1)
	if err := Run(Options{Jobs: 16}, squareJobs(out)); err != nil {
		t.Fatal(err)
	}
}

func TestFirstErrorAbortsQueuedJobs(t *testing.T) {
	const n = 64
	var ran atomic.Int64
	boom := errors.New("boom")
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(context.Context) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		}}
	}
	err := Run(Options{Jobs: 2}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// The pool stops pulling after the failure: with 2 workers at most a
	// handful of jobs past the failing one can already be in flight.
	if got := ran.Load(); got > 8 {
		t.Errorf("%d jobs ran after early failure; pool did not abort", got)
	}
}

func TestErrorCancelsContextForInFlightJobs(t *testing.T) {
	// One job blocks on the context; another fails. The blocked job must be
	// released — a deadlock here hangs the test (and the sweep it models).
	release := make(chan struct{})
	jobs := []Job{
		{Label: "waiter", Do: func(ctx context.Context) error {
			close(release)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(30 * time.Second):
				return errors.New("never cancelled")
			}
		}},
		{Label: "failer", Do: func(context.Context) error {
			<-release // ensure the waiter is already in flight
			return errors.New("boom")
		}},
	}
	err := Run(Options{Jobs: 2}, jobs)
	if err == nil || err.Error() != "boom" && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want boom or context.Canceled", err)
	}
}

func TestJobsOneIsSerialSubmissionOrder(t *testing.T) {
	var order []int
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{Do: func(context.Context) error {
			order = append(order, i) // safe: single worker
			return nil
		}}
	}
	if err := Run(Options{Jobs: 1}, jobs); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not submission order", order)
		}
	}
}

func TestProgressCallbacksAreOrderedAndComplete(t *testing.T) {
	const n = 50
	var got []Progress
	out := make([]int, n)
	err := Run(Options{Jobs: 8, Progress: func(p Progress) { got = append(got, p) }}, squareJobs(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n+1 {
		t.Fatalf("%d progress callbacks, want %d per-cell + 1 final", len(got), n)
	}
	for i, p := range got[:n] {
		if p.Done != i+1 || p.Total != n || p.Final {
			t.Fatalf("callback %d: Done/Total/Final = %d/%d/%v", i, p.Done, p.Total, p.Final)
		}
		if !strings.HasPrefix(p.Cell, "cell-") {
			t.Fatalf("callback %d: Cell = %q", i, p.Cell)
		}
	}
	fin := got[n]
	if !fin.Final || fin.Done != n || fin.Failed != 0 || fin.Err != nil {
		t.Fatalf("final callback = %+v", fin)
	}
}

func TestReporterEndsLineOnCompletion(t *testing.T) {
	var sb strings.Builder
	rep := Reporter(&sb)
	rep(Progress{Done: 1, Total: 2, Cell: "a"})
	if strings.Contains(sb.String(), "\n") {
		t.Error("newline before the final notification")
	}
	rep(Progress{Done: 2, Total: 2, Cell: "b"})
	rep(Progress{Done: 2, Total: 2, Final: true})
	if !strings.HasSuffix(sb.String(), "\n") {
		t.Error("missing final newline")
	}
	if !strings.Contains(sb.String(), "2/2 cells") {
		t.Errorf("unexpected reporter output %q", sb.String())
	}
}

// TestReporterTerminatesLineOnAbort pins the stderr stream of a failing
// sweep: the stale "\r"-redrawn progress line must be terminated by a
// newline before the CLI prints its error, and a run that never rendered a
// line must not emit a stray blank one.
func TestReporterTerminatesLineOnAbort(t *testing.T) {
	var sb strings.Builder
	boom := errors.New("boom")
	jobs := []Job{
		{Label: "ok", Do: func(context.Context) error { return nil }},
		{Label: "bad", Do: func(context.Context) error { return boom }},
		{Label: "skipped", Do: func(context.Context) error { return nil }},
	}
	err := Run(Options{Jobs: 1, Progress: Reporter(&sb)}, jobs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatalf("aborted sweep left the progress line unterminated: %q", out)
	}
	if !strings.Contains(out, "1/3 cells") {
		t.Fatalf("unexpected aborted-sweep stderr %q", out)
	}

	// A sweep failing before any success renders no line, so the reporter
	// must emit nothing at all.
	var empty strings.Builder
	err = Run(Options{Jobs: 1, Progress: Reporter(&empty)}, []Job{
		{Label: "bad", Do: func(context.Context) error { return boom }},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if empty.String() != "" {
		t.Fatalf("no-progress abort wrote %q, want nothing", empty.String())
	}
}

// TestPanicRecoveredAsLabeledError pins the tentpole contract: a panicking
// cell fails its sweep with an error naming the cell instead of crashing
// the process, and other cells drain normally.
func TestPanicRecoveredAsLabeledError(t *testing.T) {
	jobs := make([]Job, 8)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(context.Context) error {
			if i == 3 {
				panic("kaboom")
			}
			return nil
		}}
	}
	err := Run(Options{Jobs: 4}, jobs)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Label != "cell-3" || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {Label:%q Value:%v stack:%d bytes}", pe.Label, pe.Value, len(pe.Stack))
	}
	if !strings.Contains(err.Error(), `panic in cell "cell-3"`) {
		t.Fatalf("error text %q does not name the cell", err)
	}
}

func TestRetryPolicyRetriesRetryableFailures(t *testing.T) {
	var attempts atomic.Int64
	jobs := []Job{{Label: "flaky", Do: func(context.Context) error {
		if attempts.Add(1) < 3 {
			return errors.New("transient")
		}
		return nil
	}}}
	err := Run(Options{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 3}}, jobs)
	if err != nil {
		t.Fatalf("retried job still failed: %v", err)
	}
	if attempts.Load() != 3 {
		t.Fatalf("job ran %d times, want 3", attempts.Load())
	}

	// Exhausted attempts surface the last error.
	attempts.Store(0)
	err = Run(Options{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 2}}, jobs)
	if err == nil || attempts.Load() != 2 {
		t.Fatalf("err = %v after %d attempts, want failure after 2", err, attempts.Load())
	}
}

func TestRetryPolicySkipsPanicsAndCancellation(t *testing.T) {
	var attempts atomic.Int64
	err := Run(Options{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 5}}, []Job{
		{Label: "panicky", Do: func(context.Context) error { attempts.Add(1); panic("nope") }},
	})
	var pe *PanicError
	if !errors.As(err, &pe) || attempts.Load() != 1 {
		t.Fatalf("panicking job: err = %v after %d attempts, want 1 panic attempt", err, attempts.Load())
	}

	attempts.Store(0)
	err = Run(Options{Jobs: 1, Retry: RetryPolicy{MaxAttempts: 5}}, []Job{
		{Label: "cancelled", Do: func(context.Context) error {
			attempts.Add(1)
			return fmt.Errorf("wrapped: %w", context.Canceled)
		}},
	})
	if !errors.Is(err, context.Canceled) || attempts.Load() != 1 {
		t.Fatalf("cancelled job: err = %v after %d attempts, want no retries", err, attempts.Load())
	}

	// A custom classifier restricts retries further.
	attempts.Store(0)
	err = Run(Options{Jobs: 1, Retry: RetryPolicy{
		MaxAttempts: 5,
		Retryable:   func(error) bool { return false },
	}}, []Job{
		{Label: "fatal", Do: func(context.Context) error { attempts.Add(1); return errors.New("fatal") }},
	})
	if err == nil || attempts.Load() != 1 {
		t.Fatalf("non-retryable: err = %v after %d attempts", err, attempts.Load())
	}
}

func TestRetryBackoffIsCappedExponential(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 35 * time.Millisecond, 35 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.delay(i + 1); got != w {
			t.Errorf("delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (RetryPolicy{}).delay(3); got != 0 {
		t.Errorf("zero policy delay = %v, want 0", got)
	}
	// Unset cap defaults to 1s.
	if got := (RetryPolicy{BaseDelay: 300 * time.Millisecond}).delay(5); got != time.Second {
		t.Errorf("defaulted cap delay = %v, want 1s", got)
	}
}

func TestParentContextAbortsPool(t *testing.T) {
	// Jobs 0 and 1 occupy both workers and hold them until the parent
	// cancels, so cancellation is observably ahead of the rest of the
	// queue — no racing a fast worker through trivial jobs.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 2)
	var ran atomic.Int64
	jobs := make([]Job, 16)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(jctx context.Context) error {
			ran.Add(1)
			if i < 2 {
				started <- struct{}{}
				<-jctx.Done() // drain only when the pool aborts
			}
			return nil
		}}
	}
	go func() {
		<-started
		<-started
		cancel()
	}()
	err := Run(Options{Jobs: 2, Ctx: ctx}, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 2 {
		t.Errorf("cancelled pool ran %d jobs, want just the 2 in flight", got)
	}
}

func TestParentDeadlineAbortsPool(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(jctx context.Context) error {
			select {
			case <-jctx.Done():
				return nil // drain cleanly
			case <-time.After(10 * time.Second):
				return errors.New("never aborted")
			}
		}}
	}
	err := Run(Options{Jobs: 2, Ctx: ctx}, jobs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCompletedRunIgnoresLateParentCancel: if every job finished, a parent
// cancellation that raced the drain must not turn a complete sweep into a
// failed one.
func TestCompletedRunIgnoresLateParentCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	out := make([]int, 4)
	jobs := squareJobs(out)
	// Cancel after all jobs are done but (possibly) before Run returns.
	jobs = append(jobs, Job{Label: "last", Do: func(context.Context) error {
		return nil
	}})
	err := Run(Options{Jobs: 1, Ctx: ctx, Progress: func(p Progress) {
		if p.Done == len(jobs) {
			cancel()
		}
	}}, jobs)
	defer cancel()
	if err != nil {
		t.Fatalf("complete run reported %v", err)
	}
}

// TestAbortDrainsInFlightUnderLoad is the -race abort-path test: one cell
// fails while many others are mid-flight; the pool must drain without
// deadlock and report the lowest-index error.
func TestAbortDrainsInFlightUnderLoad(t *testing.T) {
	const n = 64
	errA := errors.New("err-a")
	errB := errors.New("err-b")
	var inflight atomic.Int64
	jobs := make([]Job, n)
	for i := range jobs {
		i := i
		jobs[i] = Job{Label: fmt.Sprintf("cell-%d", i), Do: func(ctx context.Context) error {
			inflight.Add(1)
			defer inflight.Add(-1)
			time.Sleep(time.Millisecond)
			switch i {
			case 11:
				return errB // higher index, may finish first
			case 5:
				time.Sleep(5 * time.Millisecond)
				return errA
			}
			return nil
		}}
	}
	err := Run(Options{Jobs: 8}, jobs)
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want the lowest-index error err-a", err)
	}
	if got := inflight.Load(); got != 0 {
		t.Fatalf("%d jobs still in flight after Run returned", got)
	}
}

func TestMemoDoesNotCacheCancellation(t *testing.T) {
	var m Memo[string, int]
	var computes int
	// First ask is aborted by sweep cancellation.
	_, err := m.Do("base", func() (int, error) {
		computes++
		return 0, fmt.Errorf("sim: baseline: %w", context.Canceled)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("first ask err = %v", err)
	}
	// The resumed sweep must recompute instead of re-failing from the memo.
	v, err := m.Do("base", func() (int, error) {
		computes++
		return 42, nil
	})
	if v != 42 || err != nil {
		t.Fatalf("resumed ask = %d, %v; cancellation was cached", v, err)
	}
	if computes != 2 {
		t.Fatalf("computed %d times, want 2", computes)
	}

	// DeadlineExceeded behaves the same.
	_, err = m.Do("slow", func() (int, error) { return 0, context.DeadlineExceeded })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline ask err = %v", err)
	}
	if v, err := m.Do("slow", func() (int, error) { return 7, nil }); v != 7 || err != nil {
		t.Fatalf("post-deadline ask = %d, %v", v, err)
	}
}

func TestMemoSingleFlight(t *testing.T) {
	var m Memo[string, int]
	var computes atomic.Int64
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("base", func() (int, error) {
				computes.Add(1)
				time.Sleep(time.Millisecond)
				return 42, nil
			})
			if v != 42 || err != nil {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("computed %d times, want 1", computes.Load())
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits", st, callers-1)
	}
}

func TestMemoCachesErrors(t *testing.T) {
	var m Memo[int, int]
	boom := errors.New("boom")
	var computes int
	for i := 0; i < 3; i++ {
		_, err := m.Do(7, func() (int, error) { computes++; return 0, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if computes != 1 {
		t.Errorf("failed compute retried %d times", computes)
	}
	if v, err := m.Do(8, func() (int, error) { return 8, nil }); v != 8 || err != nil {
		t.Errorf("independent key poisoned: %d, %v", v, err)
	}
}
