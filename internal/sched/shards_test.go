package sched

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"graphene/internal/obs"
)

func TestShardOfStableAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7, 16} {
		for i := 0; i < 100; i++ {
			key := fmt.Sprintf("tenant-%d", i)
			a := ShardOf(key, n)
			b := ShardOf(key, n)
			if a != b {
				t.Fatalf("ShardOf(%q,%d) unstable: %d vs %d", key, n, a, b)
			}
			if a < 0 || a >= n {
				t.Fatalf("ShardOf(%q,%d) = %d out of range", key, n, a)
			}
		}
	}
	if got := ShardOf("anything", 1); got != 0 {
		t.Fatalf("ShardOf with n=1 = %d, want 0", got)
	}
}

// TestShardsPinning verifies every job submitted under the same key runs on
// the same single worker goroutine, strictly serialized: no two jobs of one
// key overlap, and they run in submission order.
func TestShardsPinning(t *testing.T) {
	p := NewShards(4, 4, nil)
	const keys = 8
	const perKey = 20
	var mu sync.Mutex
	order := make(map[string][]int)
	running := make(map[string]bool)
	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("tenant-%d", k)
		for j := 0; j < perKey; j++ {
			j := j
			wg.Add(1)
			if _, err := p.Submit(key, key, func() {
				defer wg.Done()
				mu.Lock()
				if running[key] {
					mu.Unlock()
					t.Errorf("two jobs for %s overlap", key)
					return
				}
				running[key] = true
				order[key] = append(order[key], j)
				mu.Unlock()
				mu.Lock()
				running[key] = false
				mu.Unlock()
			}); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
	}
	wg.Wait()
	p.Close()
	for key, got := range order {
		for i, v := range got {
			if v != i {
				t.Fatalf("key %s ran out of order: %v", key, got)
			}
		}
	}
}

// TestShardsDrainOrderDeterministic submits jobs to a single-shard pool
// whose worker is blocked, closes the pool concurrently, and asserts every
// accepted job still runs, in exact submission order, before Close returns.
func TestShardsDrainOrderDeterministic(t *testing.T) {
	const n = 16
	p := NewShards(1, n+1, nil)
	gate := make(chan struct{})
	var mu sync.Mutex
	var ran []int
	// Occupy the worker so all subsequent submissions queue up.
	if _, err := p.Submit("k", "gate", func() { <-gate }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i := 0; i < n; i++ {
		i := i
		if _, err := p.Submit("k", "job", func() {
			mu.Lock()
			ran = append(ran, i)
			mu.Unlock()
		}); err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	close(gate)
	<-closed
	if len(ran) != n {
		t.Fatalf("drained %d jobs, want %d: %v", len(ran), n, ran)
	}
	for i, v := range ran {
		if v != i {
			t.Fatalf("drain order not submission order: %v", ran)
		}
	}
	if _, err := p.Submit("k", "late", func() {}); err != ErrShardsClosed {
		t.Fatalf("Submit after Close: err = %v, want ErrShardsClosed", err)
	}
}

// TestShardsSubmitCloseRace hammers Submit from many goroutines while Close
// runs: every Submit must either run its job exactly once or report
// ErrShardsClosed — never both, never neither.
func TestShardsSubmitCloseRace(t *testing.T) {
	for round := 0; round < 10; round++ {
		p := NewShards(4, 2, nil)
		var accepted, ran atomic.Int64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for i := 0; i < 50; i++ {
					_, err := p.Submit(fmt.Sprintf("t-%d", g), "j", func() { ran.Add(1) })
					if err == nil {
						accepted.Add(1)
					} else if err != ErrShardsClosed {
						t.Errorf("unexpected error: %v", err)
					}
				}
			}()
		}
		close(start)
		p.Close()
		wg.Wait()
		// Close may return before late Submits observe it; every accepted
		// job must have run by the time its Submit returned... but accepted
		// jobs submitted after Close returned cannot exist, so just wait for
		// the workers: Close already joined them, and post-Close Submits all
		// fail. Compare totals.
		if accepted.Load() != ran.Load() {
			t.Fatalf("round %d: accepted %d != ran %d", round, accepted.Load(), ran.Load())
		}
	}
}

func TestShardsObsGauges(t *testing.T) {
	rec := obs.New()
	p := NewShards(2, 8, rec)
	var wg sync.WaitGroup
	const jobs = 10
	for i := 0; i < jobs; i++ {
		key := fmt.Sprintf("t-%d", i)
		wg.Add(1)
		if _, err := p.Submit(key, "j", func() { wg.Done() }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	wg.Wait()
	p.Close()
	snap := rec.Snapshot()
	var total int64
	for i := 0; i < 2; i++ {
		total += snap.Counters[fmt.Sprintf("shard_%d_jobs_total", i)]
		if q := snap.Gauges[fmt.Sprintf("shard_%d_queued", i)]; q != 0 {
			t.Fatalf("shard_%d_queued = %d after drain, want 0", i, q)
		}
		if b := snap.Gauges[fmt.Sprintf("shard_%d_busy", i)]; b != 0 {
			t.Fatalf("shard_%d_busy = %d after drain, want 0", i, b)
		}
	}
	if total != jobs {
		t.Fatalf("jobs_total sum = %d, want %d", total, jobs)
	}
}

func TestShardsDefaults(t *testing.T) {
	p := NewShards(0, 0, nil)
	if p.N() < 1 {
		t.Fatalf("N() = %d, want >= 1", p.N())
	}
	done := make(chan struct{})
	if _, err := p.Submit("k", "j", func() { close(done) }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-done
	p.Close()
	p.Close() // idempotent
}
