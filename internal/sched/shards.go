package sched

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"graphene/internal/obs"
)

// ErrShardsClosed reports a Submit against a pool whose Close has begun.
// The job was not enqueued and will never run; the caller owns whatever
// resources it was carrying (the serve path answers the held connection
// with an error frame instead of hanging it).
var ErrShardsClosed = errors.New("sched: shards: pool is closed")

// ShardOf maps a pinning key onto one of n shards with FNV-1a. The hash is
// stable across processes and runs, so the same key always lands on the
// same shard for a fixed n — the property that serializes one tenant's
// sessions (and lands a resumed session on its original pipeline) without
// any shared lookup state.
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(n))
}

// shardJob is one queued unit of shard work.
type shardJob struct {
	label string
	fn    func()
}

// Shards is a long-lived pool of single-goroutine workers with bounded
// FIFO queues — the session execution engine behind serve.Server. Where
// Run executes a fixed batch and drains, Shards accepts work for the life
// of the pool: Submit pins a job to the shard its key hashes to and blocks
// while that shard's queue is full (backpressure, never unbounded
// goroutines), and each shard runs its queue strictly in submission order,
// one job at a time.
//
// Close is the SIGTERM half of the contract: no further Submit succeeds,
// every job already enqueued still runs — per shard, exactly in the order
// it was submitted — and Close returns only after the last worker exits.
// Drain order is therefore deterministic per shard; shards drain
// concurrently with respect to each other, exactly as they run.
type Shards struct {
	queues []chan shardJob
	closed chan struct{}
	once   sync.Once
	wg     sync.WaitGroup

	queued []*obs.Gauge
	busy   []*obs.Gauge
	jobs   []*obs.Counter
}

// NewShards builds and starts a pool of n workers (n <= 0 means one per
// GOMAXPROCS) with per-shard queues of the given depth (depth <= 0 means
// 8). When rec is non-nil every shard feeds three series: the
// "shard_<i>_queued" gauge (jobs accepted but not yet started), the
// "shard_<i>_busy" gauge (0 or 1: a job is executing), and the
// "shard_<i>_jobs_total" counter.
func NewShards(n, depth int, rec *obs.Recorder) *Shards {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if depth <= 0 {
		depth = 8
	}
	p := &Shards{
		queues: make([]chan shardJob, n),
		closed: make(chan struct{}),
		queued: make([]*obs.Gauge, n),
		busy:   make([]*obs.Gauge, n),
		jobs:   make([]*obs.Counter, n),
	}
	for i := range p.queues {
		p.queues[i] = make(chan shardJob, depth)
		p.queued[i] = rec.Gauge(fmt.Sprintf("shard_%d_queued", i))
		p.busy[i] = rec.Gauge(fmt.Sprintf("shard_%d_busy", i))
		p.jobs[i] = rec.Counter(fmt.Sprintf("shard_%d_jobs_total", i))
		p.wg.Add(1)
		go p.worker(i)
	}
	return p
}

// N returns the shard count.
func (p *Shards) N() int { return len(p.queues) }

// Submit enqueues fn on the shard key hashes to, blocking while that
// shard's queue is full, and returns the shard index. Once Submit returns
// nil the job is guaranteed to run — even if Close begins immediately
// after — in submission order relative to every other job on its shard.
// ErrShardsClosed means the job was rejected and will never run.
func (p *Shards) Submit(key, label string, fn func()) (int, error) {
	si := ShardOf(key, len(p.queues))
	select {
	case <-p.closed:
		return si, ErrShardsClosed
	default:
	}
	select {
	case p.queues[si] <- shardJob{label: label, fn: fn}:
		p.queued[si].Add(1)
		p.jobs[si].Inc()
		return si, nil
	case <-p.closed:
		return si, ErrShardsClosed
	}
}

// worker runs shard i: pull, run, repeat; after Close, drain the queue in
// FIFO order and exit.
func (p *Shards) worker(i int) {
	defer p.wg.Done()
	q := p.queues[i]
	for {
		select {
		case j := <-q:
			p.exec(i, j)
		case <-p.closed:
			// Drain: everything that made it into the queue still runs, in
			// the order it arrived. A Submit racing Close either committed
			// its send (and is drained here) or takes ErrShardsClosed.
			for {
				select {
				case j := <-q:
					p.exec(i, j)
				default:
					return
				}
			}
		}
	}
}

// exec runs one job with the shard's gauges around it.
func (p *Shards) exec(i int, j shardJob) {
	p.queued[i].Add(-1)
	p.busy[i].Add(1)
	j.fn()
	p.busy[i].Add(-1)
}

// Close stops the pool: Submits begun after Close fail with
// ErrShardsClosed, every enqueued job runs to completion in per-shard
// submission order, and Close blocks until all workers have exited. Safe
// to call more than once and from multiple goroutines.
func (p *Shards) Close() {
	p.once.Do(func() { close(p.closed) })
	p.wg.Wait()
}
