package pagepolicy

import (
	"testing"
	"testing/quick"

	"graphene/internal/dram"
	"graphene/internal/trace"
)

func TestClosedPageAlwaysActivates(t *testing.T) {
	p := NewClosedPage()
	for i := 0; i < 10; i++ {
		if !p.OnRequest(5) {
			t.Fatalf("closed page skipped an ACT at request %d", i)
		}
	}
}

func TestOpenPageActivatesOnConflictOnly(t *testing.T) {
	p := NewOpenPage()
	if !p.OnRequest(5) {
		t.Fatal("first request must ACT")
	}
	for i := 0; i < 100; i++ {
		if p.OnRequest(5) {
			t.Fatalf("open page re-activated the open row at hit %d", i)
		}
	}
	if !p.OnRequest(6) {
		t.Fatal("row conflict must ACT")
	}
	p.Reset()
	if !p.OnRequest(6) {
		t.Fatal("request after Reset must ACT")
	}
}

func TestMinimalistOpenClosesAfterBurst(t *testing.T) {
	p, err := NewMinimalistOpen(4)
	if err != nil {
		t.Fatal(err)
	}
	if !p.OnRequest(9) {
		t.Fatal("first request must ACT")
	}
	// Four hits ride the open row…
	for i := 0; i < 4; i++ {
		if p.OnRequest(9) {
			t.Fatalf("hit %d re-activated", i)
		}
	}
	// …then the row auto-precharged: the next access to the same row ACTs.
	if !p.OnRequest(9) {
		t.Error("row stayed open past the burst budget")
	}
}

func TestMinimalistOpenRejectsBadBudget(t *testing.T) {
	if _, err := NewMinimalistOpen(0); err == nil {
		t.Error("accepted maxHits 0")
	}
}

func TestPolicyNames(t *testing.T) {
	mo, _ := NewMinimalistOpen(4)
	for _, tc := range []struct {
		p    Policy
		want string
	}{
		{NewClosedPage(), "closed-page"},
		{NewOpenPage(), "open-page"},
		{mo, "minimalist-open-4"},
	} {
		if got := tc.p.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

// reqSlice replays fixed requests.
type reqSlice struct {
	name string
	reqs []Request
	i    int
}

func (r *reqSlice) Name() string { return r.name }
func (r *reqSlice) Next() (Request, bool) {
	if r.i >= len(r.reqs) {
		return Request{}, false
	}
	q := r.reqs[r.i]
	r.i++
	return q, true
}

func TestFrontendFiltersRowBufferHits(t *testing.T) {
	reqs := []Request{
		{Bank: 0, Row: 1}, {Bank: 0, Row: 1}, {Bank: 0, Row: 1}, // 1 ACT
		{Bank: 0, Row: 2},                    // conflict: ACT
		{Bank: 1, Row: 1}, {Bank: 1, Row: 1}, // other bank: 1 ACT
	}
	f, err := NewFrontend(&reqSlice{name: "t", reqs: reqs}, NewOpenPage, 2, dram.DDR4())
	if err != nil {
		t.Fatal(err)
	}
	accs := trace.Collect(f)
	if len(accs) != 3 {
		t.Fatalf("emitted %d ACTs, want 3: %+v", len(accs), accs)
	}
	if f.Requests() != 6 || f.ACTs() != 3 {
		t.Errorf("requests/acts = %d/%d, want 6/3", f.Requests(), f.ACTs())
	}
	if got := f.RowBufferHitRate(); got != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", got)
	}
}

func TestFrontendFoldsHitTimeIntoGaps(t *testing.T) {
	timing := dram.DDR4()
	gap := dram.Time(100)
	reqs := []Request{
		{Bank: 0, Row: 1, Gap: gap},
		{Bank: 0, Row: 1, Gap: gap}, // hit: folded into next ACT
		{Bank: 0, Row: 2, Gap: gap}, // ACT carrying the folded time
	}
	f, err := NewFrontend(&reqSlice{name: "t", reqs: reqs}, NewOpenPage, 1, timing)
	if err != nil {
		t.Fatal(err)
	}
	accs := trace.Collect(f)
	if len(accs) != 2 {
		t.Fatalf("emitted %d ACTs, want 2", len(accs))
	}
	want := gap + timing.TCL + gap // hit's gap + column occupancy + own gap
	if accs[1].Gap != want {
		t.Errorf("second ACT gap = %v, want %v", accs[1].Gap, want)
	}
}

func TestFrontendRejectsBadConfig(t *testing.T) {
	gen := &reqSlice{name: "t"}
	if _, err := NewFrontend(nil, NewOpenPage, 1, dram.DDR4()); err == nil {
		t.Error("accepted nil generator")
	}
	if _, err := NewFrontend(gen, nil, 1, dram.DDR4()); err == nil {
		t.Error("accepted nil factory")
	}
	if _, err := NewFrontend(gen, NewOpenPage, 0, dram.DDR4()); err == nil {
		t.Error("accepted zero banks")
	}
}

func TestFrontendName(t *testing.T) {
	f, err := NewFrontend(&reqSlice{name: "w"}, NewClosedPage, 1, dram.DDR4())
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "w+closed-page" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestAlternatingAttackDefeatsEveryPolicy(t *testing.T) {
	// §II-B: a two-row alternation forces an ACT per request under closed,
	// open, and minimalist-open policies alike — the page policy offers no
	// Row Hammer protection.
	mo := func() Policy {
		p, err := NewMinimalistOpen(4)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, factory := range []PolicyFactory{NewClosedPage, NewOpenPage, mo} {
		reqs := make([]Request, 1000)
		for i := range reqs {
			reqs[i] = Request{Bank: 0, Row: 10 + i%2*2}
		}
		f, err := NewFrontend(&reqSlice{name: "atk", reqs: reqs}, factory, 1, dram.DDR4())
		if err != nil {
			t.Fatal(err)
		}
		n := len(trace.Collect(f))
		if n != 1000 {
			t.Errorf("%s: attack produced %d ACTs from 1000 requests, want 1000", f.policy[0].Name(), n)
		}
	}
}

func TestQuickClosedPolicyIdentity(t *testing.T) {
	// Property: under the closed-page policy the frontend is the identity
	// on (bank,row) streams — same count, same order, gaps preserved.
	f := func(seed int64, n uint8) bool {
		count := int(n)%200 + 1
		reqs := make([]Request, count)
		r := seed
		for i := range reqs {
			r = r*6364136223846793005 + 1442695040888963407
			reqs[i] = Request{
				Bank: int(uint64(r) % 4),
				Row:  int(uint64(r>>8) % 1024),
				Gap:  dram.Time(uint64(r>>16) % 1000),
			}
		}
		fe, err := NewFrontend(&reqSlice{name: "q", reqs: reqs}, NewClosedPage, 4, dram.DDR4())
		if err != nil {
			return false
		}
		accs := trace.Collect(fe)
		if len(accs) != count {
			return false
		}
		for i, a := range accs {
			if a.Bank != reqs[i].Bank || a.Row != reqs[i].Row || a.Gap != reqs[i].Gap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQuickFrontendConservesRequests(t *testing.T) {
	// Property: requests = ACTs + row-buffer hits, for every policy.
	mo := func() Policy {
		p, _ := NewMinimalistOpen(4)
		return p
	}
	for _, factory := range []PolicyFactory{NewClosedPage, NewOpenPage, mo} {
		f := func(seed int64, n uint8) bool {
			count := int(n)%300 + 1
			reqs := make([]Request, count)
			r := seed
			for i := range reqs {
				r = r*2862933555777941757 + 3037000493
				reqs[i] = Request{Bank: int(uint64(r) % 2), Row: int(uint64(r>>8) % 8)}
			}
			fe, err := NewFrontend(&reqSlice{name: "q", reqs: reqs}, factory, 2, dram.DDR4())
			if err != nil {
				return false
			}
			acts := int64(len(trace.Collect(fe)))
			wantRate := float64(fe.Requests()-acts) / float64(fe.Requests())
			diff := fe.RowBufferHitRate() - wantRate
			return fe.Requests() == int64(count) && acts == fe.ACTs() &&
				diff < 1e-12 && diff > -1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Error(err)
		}
	}
}
