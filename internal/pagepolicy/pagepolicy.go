// Package pagepolicy models the row-buffer management policies of the
// paper's simulated memory controller (Table III lists "Minimalist-open"),
// bridging column-level memory requests and the ACT streams the Row Hammer
// protection schemes observe.
//
// Row Hammer is driven purely by ACT commands: a request that hits an open
// row buffer does not disturb neighbors. The page policy therefore decides
// how many ACTs a request stream produces — closed-page maximizes them,
// open-page minimizes them for row-local streams, and minimalist-open
// (Kaseridis et al., MICRO 2011) keeps a row open only for a small burst of
// column accesses. Attackers are unaffected: alternating-row hammers force
// an ACT per access under every policy.
package pagepolicy

import (
	"fmt"

	"graphene/internal/dram"
	"graphene/internal/trace"
)

// Request is one column-level memory request.
type Request struct {
	Bank int
	Row  int
	Col  int
	Gap  dram.Time // think time the workload inserts before this request
}

// RequestGenerator produces a finite request stream.
type RequestGenerator interface {
	Name() string
	Next() (Request, bool)
}

// Policy tracks one bank's row buffer and decides whether a request needs
// an ACT.
type Policy interface {
	// Name identifies the policy.
	Name() string
	// OnRequest observes a request to row and reports whether the bank
	// must issue an ACT for it (row buffer closed, or conflict).
	OnRequest(row int) (act bool)
	// Reset closes the row buffer.
	Reset()
}

// PolicyFactory builds one Policy per bank.
type PolicyFactory func() Policy

// closedPage precharges after every access: every request ACTs.
type closedPage struct{}

// NewClosedPage returns the closed-page policy.
func NewClosedPage() Policy { return closedPage{} }

func (closedPage) Name() string           { return "closed-page" }
func (closedPage) OnRequest(row int) bool { return true }
func (closedPage) Reset()                 {}

// openPage keeps the last row open until a conflict.
type openPage struct {
	open bool
	row  int
}

// NewOpenPage returns the open-page policy.
func NewOpenPage() Policy { return &openPage{} }

func (p *openPage) Name() string { return "open-page" }

func (p *openPage) OnRequest(row int) bool {
	if p.open && p.row == row {
		return false
	}
	p.open = true
	p.row = row
	return true
}

func (p *openPage) Reset() { p.open = false }

// minimalistOpen keeps a row open for at most maxHits column accesses
// after the activation, then auto-precharges — the paper's Table III
// policy.
type minimalistOpen struct {
	maxHits int
	open    bool
	row     int
	hits    int
}

// NewMinimalistOpen returns the minimalist-open policy with the given
// post-activation hit budget (the original proposal uses a small burst,
// typically 4).
func NewMinimalistOpen(maxHits int) (Policy, error) {
	if maxHits < 1 {
		return nil, fmt.Errorf("pagepolicy: maxHits must be >= 1, got %d", maxHits)
	}
	return &minimalistOpen{maxHits: maxHits}, nil
}

func (p *minimalistOpen) Name() string { return fmt.Sprintf("minimalist-open-%d", p.maxHits) }

func (p *minimalistOpen) OnRequest(row int) bool {
	if p.open && p.row == row {
		p.hits++
		if p.hits >= p.maxHits {
			p.open = false // auto-precharge after the burst
		}
		return false
	}
	p.open = true
	p.row = row
	p.hits = 0
	return true
}

func (p *minimalistOpen) Reset() { p.open = false }

// Frontend converts a request stream into the ACT stream a protection
// scheme observes, applying one policy instance per bank. Requests served
// from an open row buffer contribute their think time (plus a column-burst
// occupancy of tCL) to the Gap of the bank's next ACT, so the downstream
// timing model still accounts for the elapsed time.
type Frontend struct {
	gen     RequestGenerator
	policy  []Policy
	timing  dram.Timing
	pending []dram.Time // per-bank accumulated gap awaiting the next ACT

	requests int64
	acts     int64
}

// NewFrontend builds a Frontend over banks banks.
func NewFrontend(gen RequestGenerator, factory PolicyFactory, banks int, timing dram.Timing) (*Frontend, error) {
	if gen == nil || factory == nil {
		return nil, fmt.Errorf("pagepolicy: generator and factory required")
	}
	if banks < 1 {
		return nil, fmt.Errorf("pagepolicy: banks must be >= 1, got %d", banks)
	}
	f := &Frontend{
		gen:     gen,
		policy:  make([]Policy, banks),
		timing:  timing,
		pending: make([]dram.Time, banks),
	}
	for i := range f.policy {
		f.policy[i] = factory()
	}
	return f, nil
}

// Name implements trace.Generator.
func (f *Frontend) Name() string {
	return f.gen.Name() + "+" + f.policy[0].Name()
}

// Requests returns the number of requests consumed so far.
func (f *Frontend) Requests() int64 { return f.requests }

// ACTs returns the number of activations emitted so far.
func (f *Frontend) ACTs() int64 { return f.acts }

// RowBufferHitRate returns the fraction of requests served without an ACT.
func (f *Frontend) RowBufferHitRate() float64 {
	if f.requests == 0 {
		return 0
	}
	return 1 - float64(f.acts)/float64(f.requests)
}

// Next implements trace.Generator: it consumes requests until one needs an
// ACT and emits that activation.
func (f *Frontend) Next() (trace.Access, bool) {
	for {
		req, ok := f.gen.Next()
		if !ok {
			return trace.Access{}, false
		}
		if req.Bank < 0 || req.Bank >= len(f.policy) {
			// Out-of-range banks surface downstream as an explicit error
			// from memctrl; pass the access through unchanged.
			f.requests++
			f.acts++
			return trace.Access{Bank: req.Bank, Row: req.Row, Gap: req.Gap}, true
		}
		f.requests++
		if f.policy[req.Bank].OnRequest(req.Row) {
			f.acts++
			gap := f.pending[req.Bank] + req.Gap
			f.pending[req.Bank] = 0
			return trace.Access{Bank: req.Bank, Row: req.Row, Gap: gap}, true
		}
		// Row-buffer hit: fold its time into the next ACT's gap.
		f.pending[req.Bank] += req.Gap + f.timing.TCL
	}
}

var _ trace.Generator = (*Frontend)(nil)
