package perrow

import (
	"testing"

	"graphene/internal/dram"
	"graphene/internal/memctrl"
	"graphene/internal/trace"
	"graphene/internal/workload"
)

func smallTiming() dram.Timing {
	return dram.Timing{
		TREFI: 7800 * dram.Nanosecond, TRFC: 350 * dram.Nanosecond,
		TRC: 45 * dram.Nanosecond, TRCD: 13300, TRP: 13300, TCL: 13300,
		TREFW: 2 * dram.Millisecond,
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted TRH 0")
	}
	if _, err := New(Config{TRH: 2}); err == nil {
		t.Error("accepted TRH below 4")
	}
	if _, err := New(Config{TRH: 1000, Rows: -1}); err == nil {
		t.Error("accepted negative rows")
	}
}

func TestTriggerAtThreshold(t *testing.T) {
	p, err := New(Config{TRH: 50000})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i < p.Threshold(); i++ {
		if vrs := p.AppendOnActivate(nil, 9, 0); len(vrs) != 0 {
			t.Fatalf("premature refresh at ACT %d", i)
		}
	}
	vrs := p.AppendOnActivate(nil, 9, 0)
	if len(vrs) != 1 || vrs[0].Aggressor != 9 {
		t.Fatalf("at threshold: %v", vrs)
	}
	if p.Count(9) != 0 {
		t.Error("count not reset after trigger")
	}
}

func TestTickClearsRefreshedRows(t *testing.T) {
	p, err := New(Config{TRH: 50000, Rows: 1 << 12, Timing: smallTiming()})
	if err != nil {
		t.Fatal(err)
	}
	p.AppendOnActivate(nil, 0, 0)
	p.AppendOnActivate(nil, 1, 0)
	// Ticks clear rows in rolling order starting at 0.
	p.AppendTick(nil, 0)
	if p.Count(0) != 0 {
		t.Error("tick did not clear the refreshed row's counter")
	}
}

func TestSoundnessUnderAttacks(t *testing.T) {
	timing := smallTiming()
	const (
		rows = 1 << 12
		trh  = 2000
	)
	geo := dram.Geometry{Channels: 1, RanksPerChan: 1, BanksPerRank: 1, RowsPerBank: rows}
	acts := timing.MaxACTs(timing.TREFW) * 2
	attacks := []func() trace.Generator{
		func() trace.Generator { return workload.S3(0, 600, acts) },
		func() trace.Generator { return workload.DoubleSided(0, 600, acts) },
		func() trace.Generator { return workload.ManySided(0, 600, 8, acts) },
		func() trace.Generator { return workload.S1(0, rows, 20, acts) },
	}
	for i, mk := range attacks {
		res, err := memctrl.Run(memctrl.Config{
			Geometry: geo, Timing: timing,
			Factory: Factory(Config{TRH: trh, Rows: rows, Timing: timing}),
			TRH:     trh,
		}, mk())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Flips) != 0 {
			t.Errorf("attack %d: per-row tracker allowed %d flips", i, len(res.Flips))
		}
	}
}

func TestFewerFalsePositivesThanGraphene(t *testing.T) {
	// The ideal tracker triggers only on true per-row counts; a rotation
	// over many rows never reaches TRH/4 per row, so it issues zero
	// refreshes where Misra-Gries estimation (which carries counts over on
	// replacement) issues some.
	timing := smallTiming()
	const (
		rows = 1 << 12
		trh  = 2000
	)
	geo := dram.Geometry{Channels: 1, RanksPerChan: 1, BanksPerRank: 1, RowsPerBank: rows}
	acts := timing.MaxACTs(timing.TREFW)
	res, err := memctrl.Run(memctrl.Config{
		Geometry: geo, Timing: timing,
		Factory: Factory(Config{TRH: trh, Rows: rows, Timing: timing}),
		TRH:     trh,
	}, workload.RotateRows("rot", 0, 64, 3, 200, acts))
	if err != nil {
		t.Fatal(err)
	}
	// 200 rows share the window's ACTs: ~106 each per window, far below
	// TRH/4 = 500.
	if res.NRRCommands != 0 {
		t.Errorf("ideal tracker issued %d refreshes on a sub-threshold rotation", res.NRRCommands)
	}
}

func TestCostIsNotScalable(t *testing.T) {
	p, err := New(Config{TRH: 50000})
	if err != nil {
		t.Fatal(err)
	}
	c := p.Cost()
	if c.Entries != 64*1024 {
		t.Errorf("entries = %d, want one per row", c.Entries)
	}
	// 64K × 14 bits ≈ 918 Kbit per bank — §II-C's "not a scalable
	// solution", ~360× Graphene's 2,511 bits.
	if c.SRAMBits < 64*1024*13 {
		t.Errorf("SRAM bits = %d, suspiciously small", c.SRAMBits)
	}
	if ratio := float64(c.SRAMBits) / 2511; ratio < 100 {
		t.Errorf("per-row/Graphene = %.0f×, want  ≫ 100×", ratio)
	}
}

func TestResetClears(t *testing.T) {
	p, err := New(Config{TRH: 50000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.AppendOnActivate(nil, 5, 0)
	}
	p.Reset()
	if p.Count(5) != 0 || p.VictimRefreshes() != 0 {
		t.Error("Reset left state")
	}
}
