// Package perrow implements the strawman the paper dismisses in one line —
// "having a counter for every row is not a scalable solution" (§II-C) — as
// the ideal-tracking reference point: one dedicated activation counter per
// DRAM row, victim refresh at TRH/4 (the same double-sided + refresh-phase
// factor as the other counter schemes), counters cleared by the rolling
// auto-refresh.
//
// It is sound by construction and issues the minimum possible victim
// refreshes for a counter scheme of its threshold, which makes it the
// yardstick for false-positive comparisons — and its Cost() makes the
// paper's point: 1.3 Mbit per bank versus Graphene's 2.5 Kbit.
package perrow

import (
	"fmt"

	"graphene/internal/dram"
	"graphene/internal/mitigation"
)

// Config selects a per-row tracker for one bank.
type Config struct {
	TRH      int64
	Rows     int // default 64K
	Distance int // victim refresh reach; default 1
	Timing   dram.Timing
}

func (c Config) withDefaults() Config {
	if c.Rows == 0 {
		c.Rows = 64 * 1024
	}
	if c.Distance == 0 {
		c.Distance = 1
	}
	if c.Timing == (dram.Timing{}) {
		c.Timing = dram.DDR4()
	}
	return c
}

// PerRow is the per-bank engine. It implements mitigation.Mitigator.
type PerRow struct {
	cfg       Config
	threshold int64
	counts    []int64

	// The rolling reset mirrors the auto-refresh routine: every tREFI the
	// next rows/REFsPerWindow counters clear, because their rows were just
	// refreshed and their victims' accumulated disturbance restarted.
	rowsPerTick int
	clearPtr    int

	refreshes int64
}

var _ mitigation.Mitigator = (*PerRow)(nil)

// New builds a per-row tracker from cfg.
func New(cfg Config) (*PerRow, error) {
	cfg = cfg.withDefaults()
	if cfg.TRH <= 0 {
		return nil, fmt.Errorf("perrow: TRH must be positive, got %d", cfg.TRH)
	}
	if cfg.Rows < 1 {
		return nil, fmt.Errorf("perrow: rows must be positive, got %d", cfg.Rows)
	}
	if err := cfg.Timing.Validate(); err != nil {
		return nil, err
	}
	threshold := cfg.TRH / 4
	if threshold < 1 {
		return nil, fmt.Errorf("perrow: TRH %d too small", cfg.TRH)
	}
	refs := cfg.Timing.RefreshCommandsPerWindow()
	per := int((int64(cfg.Rows) + refs - 1) / refs)
	if per < 1 {
		per = 1
	}
	return &PerRow{
		cfg:         cfg,
		threshold:   threshold,
		counts:      make([]int64, cfg.Rows),
		rowsPerTick: per,
	}, nil
}

// Name implements mitigation.Mitigator.
func (p *PerRow) Name() string { return "perrow" }

// Threshold returns the victim-refresh threshold (TRH/4).
func (p *PerRow) Threshold() int64 { return p.threshold }

// VictimRefreshes returns the victim refreshes issued so far.
func (p *PerRow) VictimRefreshes() int64 { return p.refreshes }

// Count returns row's current activation count.
func (p *PerRow) Count(row int) int64 { return p.counts[row] }

// AppendOnActivate implements mitigation.Mitigator.
func (p *PerRow) AppendOnActivate(dst []mitigation.VictimRefresh, row int, now dram.Time) []mitigation.VictimRefresh {
	if row < 0 || row >= p.cfg.Rows {
		panic(fmt.Sprintf("perrow: row %d out of range [0,%d)", row, p.cfg.Rows))
	}
	p.counts[row]++
	if p.counts[row] < p.threshold {
		return dst
	}
	p.counts[row] = 0
	p.refreshes++
	return append(dst, mitigation.VictimRefresh{Aggressor: row, Distance: p.cfg.Distance})
}

// AppendOnActivateBatch implements mitigation.Mitigator through the
// shared scalar-loop adapter (the controller's batch replay still saves
// the per-ACT dispatch and timing work around it).
func (p *PerRow) AppendOnActivateBatch(dst []mitigation.VictimRefresh, rows []int32, now, dwell []dram.Time) ([]mitigation.VictimRefresh, int) {
	return mitigation.ScalarBatch(p, dst, rows, now, dwell)
}

// AppendTick implements mitigation.Mitigator: clear the counters of the
// rows the auto-refresh routine just covered (their victims are clean
// again).
func (p *PerRow) AppendTick(dst []mitigation.VictimRefresh, now dram.Time) []mitigation.VictimRefresh {
	for i := 0; i < p.rowsPerTick; i++ {
		p.counts[p.clearPtr] = 0
		p.clearPtr = (p.clearPtr + 1) % p.cfg.Rows
	}
	return dst
}

// Reset implements mitigation.Mitigator.
func (p *PerRow) Reset() {
	clear(p.counts)
	p.clearPtr = 0
	p.refreshes = 0
}

// Cost implements mitigation.Mitigator: one SRAM counter per row — the
// non-scalable price the paper rejects (§II-C).
func (p *PerRow) Cost() mitigation.HardwareCost {
	per := mitigation.Bits(int(p.threshold) + 1)
	return mitigation.HardwareCost{
		Entries:  p.cfg.Rows,
		SRAMBits: p.cfg.Rows * per,
	}
}

// Factory returns a mitigation.Factory building identical trackers.
func Factory(cfg Config) mitigation.Factory {
	return func() (mitigation.Mitigator, error) { return New(cfg) }
}
