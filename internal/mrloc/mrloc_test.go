package mrloc

import (
	"math"
	"testing"
)

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{BaseP: -1}); err == nil {
		t.Error("accepted negative base probability")
	}
	if _, err := New(Config{BaseP: 2}); err == nil {
		t.Error("accepted base probability > 1")
	}
	if _, err := New(Config{BaseP: 0.1, MaxBoost: 0.5}); err == nil {
		t.Error("accepted boost < 1")
	}
	if _, err := New(Config{BaseP: 0.1, Entries: -1}); err == nil {
		t.Error("accepted negative entries")
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	m, err := New(Config{BaseP: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.Entries != 15 {
		t.Errorf("entries = %d, want 15 (§V-A)", m.cfg.Entries)
	}
	if m.Name() != "mrloc-15" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestQueueTracksVictims(t *testing.T) {
	m, err := New(Config{BaseP: 0, Entries: 15})
	if err != nil {
		t.Fatal(err)
	}
	m.AppendOnActivate(nil, 100, 0) // victims 99, 101
	if m.QueueLen() != 2 {
		t.Errorf("queue len = %d, want 2", m.QueueLen())
	}
	m.AppendOnActivate(nil, 100, 0) // re-enqueue, no growth
	if m.QueueLen() != 2 {
		t.Errorf("queue len = %d, want 2 after repeat", m.QueueLen())
	}
	m.AppendOnActivate(nil, 200, 0)
	if m.QueueLen() != 4 {
		t.Errorf("queue len = %d, want 4", m.QueueLen())
	}
}

func TestQueueEvictsOldest(t *testing.T) {
	m, err := New(Config{BaseP: 0, Entries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []int{10, 20, 30} { // 6 victims through a 4-queue
		m.AppendOnActivate(nil, row, 0)
	}
	if m.QueueLen() != 4 {
		t.Errorf("queue len = %d, want cap 4", m.QueueLen())
	}
	if _, ok := m.pos[9]; ok {
		t.Error("oldest victim 9 still queued")
	}
	if _, ok := m.pos[31]; !ok {
		t.Error("newest victim 31 missing")
	}
}

func TestBoostRaisesTrackedVictimProbability(t *testing.T) {
	// A victim resident in the queue must be refreshed far more often than
	// the base probability; an absent victim at exactly the base rate.
	const base = 0.01
	m, err := New(Config{BaseP: base, MaxBoost: 10, Entries: 15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	const acts = 200_000
	var refreshes int
	for i := 0; i < acts; i++ {
		refreshes += len(m.AppendOnActivate(nil, 100, 0)) // victims always queued after 1st
	}
	rate := float64(refreshes) / float64(2*acts) // 2 victims per ACT
	if rate < 5*base {
		t.Errorf("tracked victim refresh rate = %g, want >> base %g (\"higher probability than p\", §V-A)", rate, base)
	}
}

func TestFig7bPatternCollapsesToPara(t *testing.T) {
	// Fig. 7(b): eight non-adjacent aggressors create 16 distinct victims,
	// one more than the 15-entry queue holds, so every victim is evicted
	// before recurring and MRLoc refreshes at exactly the base rate.
	const base = 0.01
	m, err := New(Config{BaseP: base, MaxBoost: 10, Entries: 15, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	const acts = 400_000
	var refreshes int
	for i := 0; i < acts; i++ {
		row := 100 + (i%8)*5
		refreshes += len(m.AppendOnActivate(nil, row, 0))
	}
	rate := float64(refreshes) / float64(2*acts)
	if math.Abs(rate-base) > base*0.15 {
		t.Errorf("Fig. 7(b) pattern rate = %g, want ≈ base %g (MRLoc ≡ PARA, §V-A)", rate, base)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	run := func() int64 {
		m, err := New(Config{BaseP: 0.05, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10_000; i++ {
			m.AppendOnActivate(nil, 50+(i%10)*4, 0)
		}
		return m.VictimRefreshes()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced %d vs %d refreshes", a, b)
	}
}

func TestResetClears(t *testing.T) {
	m, err := New(Config{BaseP: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.AppendOnActivate(nil, i*3, 0)
	}
	m.Reset()
	if m.QueueLen() != 0 || m.VictimRefreshes() != 0 {
		t.Error("Reset left state")
	}
}

func TestCostIsSmallCAM(t *testing.T) {
	m, err := New(Config{BaseP: 0.001, Entries: 15, Rows: 64 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Cost()
	if c.Entries != 15 || c.CAMBits != 15*16 || c.SRAMBits != 0 {
		t.Errorf("cost = %+v, want 15×16-bit CAM", c)
	}
}

func TestEdgeVictimsSkipped(t *testing.T) {
	m, err := New(Config{BaseP: 1, Rows: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, vr := range m.AppendOnActivate(nil, 0, 0) {
		if vr.Rows[0] < 0 || vr.Rows[0] >= 8 {
			t.Errorf("victim %d out of bank", vr.Rows[0])
		}
	}
}
