// Package mrloc implements MRLoc (You & Yang, DAC 2019) as described in the
// Graphene paper (§II-C, §V-A): a probabilistic scheme whose history table
// "is a simple queue, which tracks the access pattern by taking victim rows
// of an incoming stream of ACTs", refreshing queued victims with a
// probability raised above the base PARA probability according to locality.
//
// Reconstruction notes (the Graphene paper does not give MRLoc's full
// pseudo-code): for every ACT we derive the two (±1) victim rows. A victim
// already in the queue is refreshed with probability p·boost, where boost
// grows linearly with how recently the victim was enqueued; a victim absent
// from the queue is refreshed with the base probability p, exactly like
// PARA. Every derived victim is then (re-)enqueued at the tail, evicting
// the head when the queue is full. This reproduces the two properties the
// paper relies on: (i) "it refreshes rows being tracked by the history
// queue with higher probability than p", and (ii) a rotation over more
// distinct victims than queue entries (Fig. 7(b)) evicts every victim
// before its next appearance, collapsing MRLoc to plain PARA.
package mrloc

import (
	"fmt"
	"math/rand"

	"graphene/internal/dram"
	"graphene/internal/mitigation"
)

// Config selects an MRLoc instance for one bank.
type Config struct {
	BaseP    float64 // base refresh probability (PARA-equivalent p)
	MaxBoost float64 // boost multiplier for the most recently queued victim (>= 1)
	Entries  int     // history-queue length (paper's example: 15)
	Rows     int     // rows per bank; default 64K
	Seed     int64
}

func (c Config) withDefaults() Config {
	if c.Entries == 0 {
		c.Entries = 15
	}
	if c.MaxBoost == 0 {
		c.MaxBoost = 8
	}
	if c.Rows == 0 {
		c.Rows = 64 * 1024
	}
	return c
}

// MRLoc is the per-bank engine. It implements mitigation.Mitigator.
type MRLoc struct {
	cfg Config
	rng *rand.Rand

	queue []int       // victim history, head = oldest
	pos   map[int]int // victim row -> index in queue

	// victimCells backs the single-row Rows slices of appended refreshes —
	// one cell per side, recycled every AppendOnActivate (API v2 contract,
	// DESIGN.md §9).
	victimCells [2]int

	refreshes int64
}

var _ mitigation.Mitigator = (*MRLoc)(nil)

// New builds an MRLoc engine from cfg.
func New(cfg Config) (*MRLoc, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseP < 0 || cfg.BaseP > 1 {
		return nil, fmt.Errorf("mrloc: base probability %g out of [0, 1]", cfg.BaseP)
	}
	if cfg.MaxBoost < 1 {
		return nil, fmt.Errorf("mrloc: max boost %g must be >= 1", cfg.MaxBoost)
	}
	if cfg.Entries < 1 {
		return nil, fmt.Errorf("mrloc: queue needs at least one entry, got %d", cfg.Entries)
	}
	return &MRLoc{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		queue: make([]int, 0, cfg.Entries),
		pos:   make(map[int]int, cfg.Entries),
	}, nil
}

// Name implements mitigation.Mitigator.
func (m *MRLoc) Name() string { return fmt.Sprintf("mrloc-%d", m.cfg.Entries) }

// VictimRefreshes returns the number of rows refreshed so far.
func (m *MRLoc) VictimRefreshes() int64 { return m.refreshes }

// QueueLen returns the current history-queue occupancy.
func (m *MRLoc) QueueLen() int { return len(m.queue) }

// probability returns the refresh probability for a victim found at queue
// index idx. The locality signal is the re-reference distance: how many
// enqueues ago the victim last appeared (1 = the most recent tail entry).
// The probability interpolates from BaseP·MaxBoost at distance 1 down
// toward BaseP as the distance approaches the queue capacity — "refreshes
// rows being tracked by the history queue with higher probability than p"
// (§V-A).
func (m *MRLoc) probability(idx int) float64 {
	dist := len(m.queue) - idx // 1 = most recently enqueued
	frac := float64(dist-1) / float64(m.cfg.Entries)
	p := m.cfg.BaseP * (m.cfg.MaxBoost - (m.cfg.MaxBoost-1)*frac)
	return min(1, p)
}

// AppendOnActivate implements mitigation.Mitigator. Appended Rows slices
// alias m's recycled victim cells and are valid only until the next call.
func (m *MRLoc) AppendOnActivate(dst []mitigation.VictimRefresh, row int, now dram.Time) []mitigation.VictimRefresh {
	for side, victim := range [2]int{row - 1, row + 1} {
		if victim < 0 || victim >= m.cfg.Rows {
			continue
		}
		p := m.cfg.BaseP
		if idx, ok := m.pos[victim]; ok {
			p = m.probability(idx)
		}
		if p > 0 && m.rng.Float64() < p {
			m.refreshes++
			m.victimCells[side] = victim
			dst = append(dst, mitigation.VictimRefresh{Rows: m.victimCells[side : side+1 : side+1]})
		}
		m.enqueue(victim)
	}
	return dst
}

// enqueue moves victim to the queue tail, evicting the oldest entry when
// the queue is full.
func (m *MRLoc) enqueue(victim int) {
	if idx, ok := m.pos[victim]; ok {
		copy(m.queue[idx:], m.queue[idx+1:])
		m.queue[len(m.queue)-1] = victim
		for i := idx; i < len(m.queue); i++ {
			m.pos[m.queue[i]] = i
		}
		return
	}
	if len(m.queue) == m.cfg.Entries {
		evicted := m.queue[0]
		delete(m.pos, evicted)
		copy(m.queue, m.queue[1:])
		m.queue = m.queue[:len(m.queue)-1]
		for i, v := range m.queue {
			m.pos[v] = i
		}
	}
	m.queue = append(m.queue, victim)
	m.pos[victim] = len(m.queue) - 1
}

// AppendOnActivateBatch implements mitigation.Mitigator through the
// shared scalar-loop adapter (the controller's batch replay still saves
// the per-ACT dispatch and timing work around it).
func (m *MRLoc) AppendOnActivateBatch(dst []mitigation.VictimRefresh, rows []int32, now, dwell []dram.Time) ([]mitigation.VictimRefresh, int) {
	return mitigation.ScalarBatch(m, dst, rows, now, dwell)
}

// AppendTick implements mitigation.Mitigator; MRLoc takes no refresh-time
// action.
func (m *MRLoc) AppendTick(dst []mitigation.VictimRefresh, now dram.Time) []mitigation.VictimRefresh {
	return dst
}

// Reset implements mitigation.Mitigator.
func (m *MRLoc) Reset() {
	m.queue = m.queue[:0]
	clear(m.pos)
	m.rng = rand.New(rand.NewSource(m.cfg.Seed))
	m.refreshes = 0
}

// Cost implements mitigation.Mitigator: the history queue is a small CAM of
// row addresses.
func (m *MRLoc) Cost() mitigation.HardwareCost {
	return mitigation.HardwareCost{
		Entries: m.cfg.Entries,
		CAMBits: m.cfg.Entries * mitigation.Bits(m.cfg.Rows),
	}
}

// Factory returns a mitigation.Factory; each bank gets an independent RNG
// stream derived from the base seed.
func Factory(cfg Config) mitigation.Factory {
	next := cfg.Seed
	return func() (mitigation.Mitigator, error) {
		c := cfg
		c.Seed = next
		next++
		return New(c)
	}
}
