package hammer

import (
	"testing"
	"testing/quick"

	"graphene/internal/mitigation"
)

func mustOracle(t *testing.T, rows int, trh int64, dist int, mu mitigation.MuModel) *Oracle {
	t.Helper()
	o, err := NewOracle(rows, trh, dist, mu)
	if err != nil {
		t.Fatalf("NewOracle: %v", err)
	}
	return o
}

func TestNewOracleRejectsBadArgs(t *testing.T) {
	if _, err := NewOracle(0, 100, 1, nil); err == nil {
		t.Error("accepted 0 rows")
	}
	if _, err := NewOracle(16, 0, 1, nil); err == nil {
		t.Error("accepted TRH 0")
	}
	if _, err := NewOracle(16, 100, 0, nil); err == nil {
		t.Error("accepted distance 0")
	}
	if _, err := NewOracle(16, 100, 2, func(i int) float64 { return 2 }); err == nil {
		t.Error("accepted invalid μ")
	}
}

func TestSingleSidedFlipAtExactThreshold(t *testing.T) {
	o := mustOracle(t, 64, 100, 1, nil)
	var flips []Flip
	for i := 0; i < 100; i++ {
		flips = append(flips, o.AppendActivate(nil, 10, 0)...)
	}
	if len(flips) != 2 {
		t.Fatalf("got %d flips, want 2 (rows 9 and 11)", len(flips))
	}
	victims := map[int]bool{flips[0].Victim: true, flips[1].Victim: true}
	if !victims[9] || !victims[11] {
		t.Errorf("flipped %v, want rows 9 and 11", victims)
	}
	// The flip fires exactly at the TRH-th ACT, not before.
	o.Reset()
	for i := 0; i < 99; i++ {
		if f := o.AppendActivate(nil, 10, 0); len(f) != 0 {
			t.Fatalf("flip fired at ACT %d, want none before 100", i+1)
		}
	}
	if f := o.AppendActivate(nil, 10, 0); len(f) != 2 {
		t.Fatalf("flip did not fire at the 100th ACT: %v", f)
	}
}

func TestDoubleSidedHalvesPerAggressorBudget(t *testing.T) {
	// §III-B: two aggressors hammering one victim from both sides need
	// only TRH/2 ACTs each.
	o := mustOracle(t, 64, 100, 1, nil)
	for i := 0; i < 50; i++ {
		if f := o.AppendActivate(nil, 9, 0); len(f) != 0 && i < 49 {
			t.Fatalf("premature flip at pair %d", i)
		}
		o.AppendActivate(nil, 11, 0)
	}
	if o.Disturbance(10) != 100 {
		t.Errorf("victim disturbance = %g, want 100", o.Disturbance(10))
	}
	if o.FlipCount() == 0 {
		t.Error("double-sided hammering with TRH/2 per side did not flip")
	}
}

func TestRefreshClearsDisturbance(t *testing.T) {
	o := mustOracle(t, 64, 100, 1, nil)
	for i := 0; i < 99; i++ {
		o.AppendActivate(nil, 10, 0)
	}
	o.RefreshRow(9)
	o.RefreshRow(11)
	for i := 0; i < 99; i++ {
		if f := o.AppendActivate(nil, 10, 0); len(f) != 0 {
			t.Fatalf("flip after refresh at ACT %d", i)
		}
	}
	if o.FlipCount() != 0 {
		t.Errorf("flips = %d, want 0", o.FlipCount())
	}
}

func TestFlipLatchReportsOncePerRefresh(t *testing.T) {
	o := mustOracle(t, 64, 10, 1, nil)
	var total int
	for i := 0; i < 30; i++ {
		total += len(o.AppendActivate(nil, 10, 0))
	}
	if total != 2 { // one per victim, latched afterwards
		t.Errorf("reported %d flips, want 2 (latched)", total)
	}
	o.RefreshRow(9)
	for i := 0; i < 10; i++ {
		total += len(o.AppendActivate(nil, 10, 0))
	}
	if total != 3 {
		t.Errorf("after refresh, total = %d, want 3", total)
	}
}

func TestNonAdjacentDisturbance(t *testing.T) {
	o := mustOracle(t, 64, 100, 3, mitigation.InverseSquareMu)
	o.AppendActivate(nil, 10, 0)
	cases := []struct {
		row  int
		want float64
	}{
		{9, 1}, {11, 1},
		{8, 0.25}, {12, 0.25},
		{7, 1.0 / 9}, {13, 1.0 / 9},
		{6, 0}, {14, 0},
	}
	for _, tc := range cases {
		if got := o.Disturbance(tc.row); got != tc.want {
			t.Errorf("disturbance(%d) = %g, want %g", tc.row, got, tc.want)
		}
	}
}

func TestEdgeRowsHaveOneNeighbor(t *testing.T) {
	o := mustOracle(t, 8, 10, 1, nil)
	for i := 0; i < 10; i++ {
		o.AppendActivate(nil, 0, 0)
	}
	if o.FlipCount() != 1 {
		t.Errorf("edge aggressor flipped %d victims, want 1 (row 1)", o.FlipCount())
	}
	if o.Flips()[0].Victim != 1 {
		t.Errorf("victim = %d, want 1", o.Flips()[0].Victim)
	}
}

func TestMaxDisturbance(t *testing.T) {
	o := mustOracle(t, 64, 1000, 1, nil)
	for i := 0; i < 7; i++ {
		o.AppendActivate(nil, 20, 0)
	}
	o.AppendActivate(nil, 30, 0)
	row, d := o.MaxDisturbance()
	if d != 7 || (row != 19 && row != 21) {
		t.Errorf("MaxDisturbance = row %d, %g; want row 19 or 21 with 7", row, d)
	}
}

func TestResetClearsEverything(t *testing.T) {
	o := mustOracle(t, 16, 5, 1, nil)
	for i := 0; i < 10; i++ {
		o.AppendActivate(nil, 8, 0)
	}
	o.Reset()
	if o.FlipCount() != 0 || o.ACTs() != 0 {
		t.Errorf("Reset left flips %d acts %d", o.FlipCount(), o.ACTs())
	}
	if _, d := o.MaxDisturbance(); d != 0 {
		t.Errorf("Reset left disturbance %g", d)
	}
}

func TestQuickDisturbanceConservation(t *testing.T) {
	// Property: with uniform μ and ±1, total disturbance equals
	// 2·ACTs − (ACTs on edge rows) when nothing is refreshed.
	f := func(seed int64, n uint8) bool {
		rows := 32
		o, err := NewOracle(rows, 1<<40, 1, nil)
		if err != nil {
			return false
		}
		acts := int(n)
		edge := 0
		r := seed
		for i := 0; i < acts; i++ {
			r = r*6364136223846793005 + 1442695040888963407
			row := int(uint64(r) % uint64(rows))
			if row == 0 || row == rows-1 {
				edge++
			}
			o.AppendActivate(nil, row, 0)
		}
		var total float64
		for i := 0; i < rows; i++ {
			total += o.Disturbance(i)
		}
		return total == float64(2*acts-edge)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTopVictims(t *testing.T) {
	o := mustOracle(t, 64, 1<<40, 1, nil)
	for i := 0; i < 9; i++ {
		o.AppendActivate(nil, 20, 0) // victims 19, 21 at 9 each
	}
	for i := 0; i < 4; i++ {
		o.AppendActivate(nil, 40, 0) // victims 39, 41 at 4 each
	}
	top := o.TopVictims(3)
	if len(top) != 3 {
		t.Fatalf("got %d victims, want 3", len(top))
	}
	if top[0].Disturbance != 9 || top[1].Disturbance != 9 {
		t.Errorf("top two = %+v, want the 9s", top[:2])
	}
	if top[2].Disturbance != 4 {
		t.Errorf("third = %+v, want a 4", top[2])
	}
	if got := o.TopVictims(0); got != nil {
		t.Errorf("TopVictims(0) = %v", got)
	}
	if got := o.TopVictims(100); len(got) != 4 {
		t.Errorf("TopVictims(100) returned %d rows, want the 4 disturbed", len(got))
	}
}

func TestAppendActivateOpenWeighting(t *testing.T) {
	// With nRAS set, a dwell of k·nRAS adds weight k; dwell 0 and
	// dwell == nRAS both add exactly 1.
	o := mustOracle(t, 16, 10, 1, nil)
	o.SetNRAS(100)
	o.AppendActivateOpen(nil, 8, 0, 0)
	if d := o.Disturbance(7); d != 1 {
		t.Errorf("dwell 0 weight = %v, want 1", d)
	}
	o.AppendActivateOpen(nil, 8, 1, 100)
	if d := o.Disturbance(7); d != 2 {
		t.Errorf("dwell nRAS added %v, want 1", d-1)
	}
	o.AppendActivateOpen(nil, 8, 2, 350)
	if d := o.Disturbance(7); d != 5.5 {
		t.Errorf("dwell 3.5·nRAS brought disturbance to %v, want 5.5", d)
	}
	// Without SetNRAS, dwell is ignored entirely.
	o2 := mustOracle(t, 16, 10, 1, nil)
	o2.AppendActivateOpen(nil, 8, 0, 1<<40)
	if d := o2.Disturbance(7); d != 1 {
		t.Errorf("unconfigured nRAS weighted dwell: %v, want 1", d)
	}
}

func TestRefreshAtFlipTickNoDoubleReport(t *testing.T) {
	// Regression: under the fractional-increment model a victim can flip
	// and be refreshed within the same tick's episode. The latch must
	// survive a refresh at exactly the flip tick so residual same-tick
	// ACTs cannot re-report the flip; a strictly later refresh clears it.
	o := mustOracle(t, 16, 2, 1, nil)
	o.SetNRAS(100)
	const tick = 1000
	flips := o.AppendActivateOpen(nil, 8, tick, 250) // weight 2.5 ≥ TRH on both neighbors
	if len(flips) != 2 {
		t.Fatalf("flips = %v, want victims 7 and 9", flips)
	}
	o.RefreshRowAt(7, tick) // refresh at the exact flip tick
	if o.Disturbance(7) != 0 {
		t.Errorf("refresh did not clear disturbance: %v", o.Disturbance(7))
	}
	// Residual same-tick activity must not re-report row 7 (and row 9 is
	// still latched from the first episode): no new flips at all.
	flips = o.AppendActivateOpen(nil, 8, tick, 250)
	if len(flips) != 0 || o.FlipCount() != 2 {
		t.Errorf("refresh at flip tick double-reported: new %v, FlipCount %d (want 0, 2)", flips, o.FlipCount())
	}
	// A refresh strictly after the flip tick releases the latch.
	o.RefreshRowAt(7, tick+1)
	flips = o.AppendActivateOpen(nil, 8, tick+2, 250)
	found := false
	for _, f := range flips {
		found = found || f.Victim == 7
	}
	if !found {
		t.Error("later refresh failed to release the latch: no new flip for row 7")
	}
}
