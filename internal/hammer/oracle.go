// Package hammer provides the ground-truth Row Hammer model against which
// every protection scheme is judged.
//
// The Oracle tracks, for every potential victim row of one bank, the charge
// disturbance accumulated since that row's last refresh, in units of
// "adjacent-aggressor ACT equivalents": an ACT on a row i rows away adds
// μ_i, with μ_1 = 1 (paper §II-B, §III-D). A victim whose accumulator
// reaches the Row Hammer threshold TRH suffers a bit flip. A scheme has a
// false negative exactly when the oracle records a flip; the paper's
// Theorem (§III-C) says Graphene never does.
//
// The conservative double-sided worst case — two aggressors hammering one
// victim, each contributing after only TRH/2 ACTs — falls out naturally:
// both neighbors' ACTs accumulate into the same victim counter.
package hammer

import (
	"fmt"

	"graphene/internal/dram"
	"graphene/internal/mitigation"
)

// Flip records one bit-flip event: a victim row whose disturbance
// accumulator reached TRH before any refresh cleared it.
type Flip struct {
	Victim      int
	At          dram.Time
	Disturbance float64
}

func (f Flip) String() string {
	return fmt.Sprintf("bit flip in row %d at %v (disturbance %.1f)", f.Victim, f.At, f.Disturbance)
}

// Oracle is the per-bank ground-truth disturbance tracker.
type Oracle struct {
	rows     int
	trh      float64
	distance int
	mu       []float64 // mu[d-1] = μ_d for d in [1, distance]
	nras     dram.Time // normalizes dwell; 0 until SetNRAS

	disturb []float64
	flipped []bool      // latched per victim until its next refresh
	flipAt  []dram.Time // tick the latch was set, for refresh-at-flip-tick disambiguation
	flips   []Flip

	acts int64
}

// NewOracle builds an oracle for a bank with the given row count, Row
// Hammer threshold, disturbance reach, and μ model (nil = UniformMu).
func NewOracle(rows int, trh int64, distance int, mu mitigation.MuModel) (*Oracle, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("hammer: rows must be positive, got %d", rows)
	}
	if trh <= 0 {
		return nil, fmt.Errorf("hammer: TRH must be positive, got %d", trh)
	}
	if _, err := mitigation.AmpFactor(distance, mu); err != nil {
		return nil, err
	}
	if mu == nil {
		mu = mitigation.UniformMu
	}
	mus := make([]float64, distance)
	for d := 1; d <= distance; d++ {
		mus[d-1] = mu(d)
	}
	return &Oracle{
		rows:     rows,
		trh:      float64(trh),
		distance: distance,
		mu:       mus,
		disturb:  make([]float64, rows),
		flipped:  make([]bool, rows),
		flipAt:   make([]dram.Time, rows),
	}, nil
}

// SetNRAS fixes the device's minimum open-row duration, against which
// AppendActivateOpen normalizes dwell (weight = dwell/nRAS, RowPress
// §4). Zero (the default) disables weighting: every ACT counts 1
// regardless of dwell, the pre-RowPress model.
func (o *Oracle) SetNRAS(nras dram.Time) {
	if nras < 0 {
		panic(fmt.Sprintf("hammer: negative nRAS %v", nras))
	}
	o.nras = nras
}

// Rows returns the bank's row count.
func (o *Oracle) Rows() int { return o.rows }

// ACTs returns the number of activations observed.
func (o *Oracle) ACTs() int64 { return o.acts }

// AppendActivate records one ACT on row at time now and appends any
// victims that flip as a result to dst, returning the extended slice
// (append-style, so the replay hot path can recycle one staging buffer
// across ACTs). Each victim is reported at most once per refresh interval
// (the latch clears when the row is refreshed).
func (o *Oracle) AppendActivate(dst []Flip, row int, now dram.Time) []Flip {
	return o.AppendActivateOpen(dst, row, now, 0)
}

// AppendActivateOpen is AppendActivate for an activation that holds its
// row open for dwell picoseconds. Under the duration-weighted disturbance
// model (RowPress: disturbance grows with open-row time), the per-ACT
// increment scales by dwell/nRAS. Dwell 0 means the device minimum and
// always weighs exactly 1, as does every dwell when no nRAS has been
// configured — so legacy streams are bit-identical through either entry
// point.
func (o *Oracle) AppendActivateOpen(dst []Flip, row int, now, dwell dram.Time) []Flip {
	if row < 0 || row >= o.rows {
		panic(fmt.Sprintf("hammer: activate row %d out of range [0,%d)", row, o.rows))
	}
	if dwell < 0 {
		panic(fmt.Sprintf("hammer: negative dwell %v", dwell))
	}
	weight := 1.0
	if dwell != 0 && o.nras > 0 {
		weight = float64(dwell) / float64(o.nras)
	}
	o.acts++
	for d := 1; d <= o.distance; d++ {
		for _, v := range [2]int{row - d, row + d} {
			if v < 0 || v >= o.rows {
				continue
			}
			o.disturb[v] += o.mu[d-1] * weight
			if o.disturb[v] >= o.trh && !o.flipped[v] {
				o.flipped[v] = true
				o.flipAt[v] = now
				f := Flip{Victim: v, At: now, Disturbance: o.disturb[v]}
				o.flips = append(o.flips, f)
				dst = append(dst, f)
			}
		}
	}
	return dst
}

// RefreshRow restores row's charge: its disturbance accumulator and flip
// latch are cleared. Call it for every row covered by an auto-refresh, NRR,
// or region refresh.
func (o *Oracle) RefreshRow(row int) {
	if row < 0 || row >= o.rows {
		panic(fmt.Sprintf("hammer: refresh row %d out of range [0,%d)", row, o.rows))
	}
	o.disturb[row] = 0
	o.flipped[row] = false
}

// RefreshRowAt is RefreshRow for a refresh issued at time now. The
// disturbance accumulator always clears, but the flip latch survives a
// refresh at the exact tick the flip was recorded: the flip already
// happened in that instant's episode, and releasing the latch would let
// the fractional-increment model re-report the same flip from residual
// same-tick activity. A refresh strictly after the flip tick clears the
// latch as usual.
func (o *Oracle) RefreshRowAt(row int, now dram.Time) {
	if row < 0 || row >= o.rows {
		panic(fmt.Sprintf("hammer: refresh row %d out of range [0,%d)", row, o.rows))
	}
	o.disturb[row] = 0
	if o.flipped[row] && now <= o.flipAt[row] {
		return
	}
	o.flipped[row] = false
}

// Disturbance returns the victim accumulator for row.
func (o *Oracle) Disturbance(row int) float64 { return o.disturb[row] }

// MaxDisturbance returns the most-disturbed row and its accumulator value —
// the safety-margin metric used in tests (must stay below TRH for sound
// schemes).
func (o *Oracle) MaxDisturbance() (row int, d float64) {
	for i, v := range o.disturb {
		if v > d {
			row, d = i, v
		}
	}
	return row, d
}

// Flips returns every flip recorded so far.
func (o *Oracle) Flips() []Flip { return o.flips }

// FlipCount returns the number of recorded flips.
func (o *Oracle) FlipCount() int { return len(o.flips) }

// Reset clears all accumulators and the flip log.
func (o *Oracle) Reset() {
	for i := range o.disturb {
		o.disturb[i] = 0
		o.flipped[i] = false
		o.flipAt[i] = 0
	}
	o.flips = nil
	o.acts = 0
}

// VictimReport is one row's current disturbance, for reporting.
type VictimReport struct {
	Row         int
	Disturbance float64
}

// TopVictims returns the n most-disturbed rows, highest first — the
// monitoring view a controller would export alongside the scheme's own
// counters.
func (o *Oracle) TopVictims(n int) []VictimReport {
	if n <= 0 {
		return nil
	}
	top := make([]VictimReport, 0, n+1)
	for row, d := range o.disturb {
		if d == 0 {
			continue
		}
		// Insertion into the small sorted slice.
		i := len(top)
		for i > 0 && top[i-1].Disturbance < d {
			i--
		}
		if i >= n {
			continue
		}
		top = append(top, VictimReport{})
		copy(top[i+1:], top[i:])
		top[i] = VictimReport{Row: row, Disturbance: d}
		if len(top) > n {
			top = top[:n]
		}
	}
	return top
}
