# Convenience targets; everything is plain `go` underneath (stdlib only).

GO ?= go

.PHONY: all build vet test test-race test-short bench bench-sweep bench-obs bench-fault bench-hotpath bench-trace bench-replay bench-rowpress bench-serve fuzz race tables security examples check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# One smoke pass over the sweep scheduler and the streaming replay path:
# a single iteration each of the jobs-1 vs jobs-max grid and the
# streaming-vs-buffered full-scale replay (with allocation counts).
bench-sweep:
	$(GO) test -run xxx -bench 'BenchmarkSweepScheduler' -benchtime 1x -benchmem .
	$(GO) test -run xxx -bench 'BenchmarkReplayFullScaleAdversarial' -benchtime 1x -benchmem ./internal/memctrl

# Observability smoke pass: a short replay on the full-scale Table III
# geometry with -metrics/-events-style file output enabled, asserting the
# event stream is non-empty valid JSON lines whose totals match the run's
# summary counters (DESIGN.md §7 contract).
bench-obs:
	$(GO) test -run 'TestObsSmoke' -v .

# Fault-injection suite (DESIGN.md §8): every wired fault site — sched
# workers, the memctrl partitioner and replay goroutines, trace reads —
# plus the checkpoint/resume acceptance tests that kill a sweep with an
# injected fault and require byte-identical resumed output.
bench-fault:
	$(GO) test -run 'FaultInject|Checkpoint' -v ./internal/faultinject ./internal/sched ./internal/memctrl ./internal/trace ./internal/sim ./cmd/rhsweep

# Replay hot-path gate (DESIGN.md §9): the testing.AllocsPerRun tests
# assert the steady-state ACT loop allocates exactly zero, then the
# microbenchmarks run once with -benchmem and rhbench converts the output
# to machine-readable BENCH_hotpath.json, re-asserting 0 allocs/op on
# every hot-path bench (including the per-trigger-cycle one that caught
# the 7 allocs/op the pre-append API hid under integer rounding).
bench-hotpath:
	$(GO) test -run 'TestReplayHotPathZeroAlloc' ./internal/memctrl
	$(GO) test -run xxx -bench 'BenchmarkHotPath' -benchtime 1000x -benchmem ./internal/memctrl | $(GO) run ./cmd/rhbench -o BENCH_hotpath.json -assert-zero-allocs 'BenchmarkHotPath'

# Trace codec gate: parse+replay-ingest cost per ACT for the text vs
# binary formats, recorded to machine-readable BENCH_trace.json, with
# rhbench enforcing the ≥10x parse-throughput target on decode-blocks
# (the BlockReader path bank-parallel replay ingests) vs the text parser.
bench-trace:
	$(GO) test -run xxx -bench 'BenchmarkTraceCodec' -benchtime 5x -count 3 ./internal/trace | $(GO) run ./cmd/rhbench -o BENCH_trace.json -assert-speedup 'decode-blocks:parse-text:10'

# Batched replay gate (DESIGN.md §11): the zero-alloc test pins the batch
# core's steady state at exactly 0 allocations, then the engine pair
# benchmarks (identical ACT runs through the scalar replayOne loop vs the
# batched replayRun) and the all-banks aggregate pair (buffered per-ACT
# replay vs columnar RunBlocks ingest) record single-bank and aggregate
# ACT/s into BENCH_replay.json. rhbench asserts the ISSUE 7 floors: ≥3x
# batch-vs-scalar on trigger-light replay, ≥1.3x end-to-end aggregate,
# and 0 allocs/op on every batch engine bench.
bench-replay:
	$(GO) test -run 'TestReplayBatchZeroAlloc' ./internal/memctrl
	$(GO) test -run xxx -bench 'BenchmarkReplayEngine' -benchtime 500x -count 3 -benchmem ./internal/memctrl > BENCH_replay.txt
	$(GO) test -run xxx -bench 'BenchmarkReplayAggregate' -benchtime 3x -count 3 -benchmem ./internal/memctrl >> BENCH_replay.txt
	$(GO) run ./cmd/rhbench -i BENCH_replay.txt -o BENCH_replay.json -assert-speedup 'ReplayEngine/batch-trigger-light:ReplayEngine/scalar-trigger-light:3'
	$(GO) run ./cmd/rhbench -i BENCH_replay.txt -o /dev/null -assert-speedup 'batch-allbanks:scalar-allbanks:1.3'
	$(GO) run ./cmd/rhbench -i BENCH_replay.txt -o /dev/null -assert-zero-allocs 'BenchmarkReplayEngine/batch'
	rm -f BENCH_replay.txt

# RowPress dwell-column gate (DESIGN.md §13): the dwell-carrying zero-alloc
# legs pin the columnar dwell path at exactly 0 allocations, then the
# BenchmarkReplayRowpress pair replays identical semantic work (an all-nRAS
# dwell column means every increment is 1 and every ActCycle equals tRC)
# with and without the column, so the ratio prices carrying and weighing
# the column alone. rhbench asserts dwell ≥ 0.8x plain and 0 allocs/op.
bench-rowpress:
	$(GO) test -run 'TestReplayBatchZeroAlloc/.*dwell' ./internal/memctrl
	$(GO) test -run xxx -bench 'BenchmarkReplayRowpress' -benchtime 500x -count 3 -benchmem ./internal/memctrl > BENCH_rowpress.txt
	$(GO) run ./cmd/rhbench -i BENCH_rowpress.txt -o BENCH_rowpress.json -assert-speedup 'ReplayRowpress/dwell:ReplayRowpress/plain:0.8'
	$(GO) run ./cmd/rhbench -i BENCH_rowpress.txt -o /dev/null -assert-zero-allocs 'BenchmarkReplayRowpress'
	rm -f BENCH_rowpress.txt

# Serving-path gate (DESIGN.md §12): one benchmark pair replays the same
# 8-tenant x 8-bank x 1M-ACT aggregate directly through memctrl.RunBlocks
# and through a live rhsimd-style TCP daemon (frame encode, wire decode,
# per-tenant replay, report round trip). rhbench asserts the ISSUE 8
# floors on the serve side: within 2x of the direct path, ≥10M ACT/s
# aggregate, and bounded memory (≤16 bytes/ACT across client+server, so
# any per-ACT allocation on the hot path fails the gate).
#
# The multi-shard leg pins the scale-out claim: 8 single-bank tenants on
# 4 worker shards vs 1. On a ≥4-core runner shards-4 must be ≥2x faster;
# a smaller runner cannot scale, so the gate degrades to parity (≥0.85x,
# i.e. shard scheduling itself must not cost throughput) — the same
# adaptive discipline the sweep gate uses for jobs-1 vs jobs-max.
bench-serve:
	$(GO) test -run xxx -bench 'BenchmarkServePath' -benchtime 1x -count 3 ./internal/serve > BENCH_serve.txt
	$(GO) test -run xxx -bench 'BenchmarkServeShards' -benchtime 1x -count 3 ./internal/serve >> BENCH_serve.txt
	$(GO) run ./cmd/rhbench -i BENCH_serve.txt -o BENCH_serve.json -assert-speedup 'serve-aggregate:direct-aggregate:0.5'
	$(GO) run ./cmd/rhbench -i BENCH_serve.txt -o /dev/null -assert-min 'serve-aggregate:acts/s:10000000'
	$(GO) run ./cmd/rhbench -i BENCH_serve.txt -o /dev/null -assert-max 'serve-aggregate:b/act:16'
	@if [ "$$(nproc)" -ge 4 ]; then \
		$(GO) run ./cmd/rhbench -i BENCH_serve.txt -o /dev/null -assert-speedup 'ServeShards/shards=4:ServeShards/shards=1:2'; \
	else \
		echo "bench-serve: $$(nproc)-core runner: asserting shard parity instead of 2x scale-out"; \
		$(GO) run ./cmd/rhbench -i BENCH_serve.txt -o /dev/null -assert-speedup 'ServeShards/shards=4:ServeShards/shards=1:0.85'; \
	fi
	rm -f BENCH_serve.txt

# Race detector over the packages that run per-bank goroutines and the
# sweep worker pool, plus the mitigation stack fuzz seeds (FuzzStackAppend
# runs its corpus as regular tests here). -short skips the tens-of-seconds
# full-scale run, which would dominate `make check` under the race
# detector's overhead.
race:
	$(GO) test -race -short ./internal/faultinject/... ./internal/memctrl/... ./internal/sim/... ./internal/sched/... ./internal/mitigation/... ./internal/trace/... ./internal/serve/... ./internal/obs/... ./cmd/rhsimd/... ./cmd/rhload/...

# Short exploratory fuzz passes over the core invariants.
fuzz:
	$(GO) test ./internal/graphene -fuzz=FuzzTableInvariants -fuzztime=30s -run xxx
	$(GO) test ./internal/graphene -fuzz=FuzzBankNeverMissesTheorem -fuzztime=30s -run xxx
	$(GO) test ./internal/graphene -fuzz=FuzzTableMatchesReference -fuzztime=30s -run xxx
	$(GO) test ./internal/graphene -fuzz=FuzzBatchAppend -fuzztime=30s -run xxx
	$(GO) test ./internal/trace -fuzz=FuzzBinaryReader -fuzztime=30s -run xxx
	$(GO) test ./internal/memctrl -fuzz=FuzzStreamingMatchesBuffered -fuzztime=30s -run xxx
	$(GO) test ./internal/mitigation -fuzz=FuzzStackAppend -fuzztime=30s -run xxx
	$(GO) test ./internal/serve -fuzz=FuzzWireSession -fuzztime=30s -run xxx

tables:
	$(GO) run ./cmd/rhtables -all

security:
	$(GO) run ./cmd/rhsecurity

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/attack
	$(GO) run ./examples/scaling
	$(GO) run ./examples/nonadjacent
	$(GO) run ./examples/pagepolicy
	$(GO) run ./examples/observability

check: build vet test race bench-sweep bench-fault bench-hotpath bench-trace bench-replay bench-rowpress bench-serve
