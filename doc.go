// Package graphene is a from-scratch Go reproduction of "Graphene: Strong
// yet Lightweight Row Hammer Protection" (Park, Kwon, Lee, Ham, Ahn, Lee —
// MICRO 2020).
//
// The repository contains the Graphene Misra-Gries aggressor tracker
// (internal/graphene), every baseline the paper compares against (PARA,
// PRoHIT, MRLoc, CBT, TWiCe, CRA), the DRAM-system substrate they run on
// (internal/dram, internal/memctrl, internal/energy), a ground-truth Row
// Hammer disturbance oracle (internal/hammer), workload and attack
// generators (internal/workload), the §V-A security analysis
// (internal/security), and the area models (internal/area).
//
// bench_test.go in this directory holds one benchmark per table and figure
// of the paper; cmd/rhtables regenerates them as text. See README.md,
// DESIGN.md and EXPERIMENTS.md.
package graphene
