package graphene

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"graphene/internal/dram"
	grapheneimpl "graphene/internal/graphene"
	"graphene/internal/memctrl"
	"graphene/internal/obs"
	"graphene/internal/workload"
)

// TestObsSmoke is the `make bench-obs` target: a short replay on the
// paper's full-scale Table III geometry with metrics and events enabled
// through the same file plumbing the -metrics/-events CLI flags use. It
// asserts the event stream is non-empty, every line is valid JSON, and
// the stream's NRR total agrees with both the metrics snapshot and the
// simulation result.
func TestObsSmoke(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "metrics.json")
	epath := filepath.Join(dir, "events.jsonl")
	rec, closeObs, err := obs.NewFromPaths(mpath, epath)
	if err != nil {
		t.Fatal(err)
	}

	geo := dram.Default() // Table III full-scale geometry
	timing := dram.DDR4()
	const trh = 2000 // low threshold so a short trace still triggers NRRs
	cfg := memctrl.Config{
		Geometry: geo, Timing: timing,
		Factory: grapheneimpl.Factory(grapheneimpl.Config{TRH: trh, K: 2, Rows: geo.RowsPerBank, Timing: timing}),
		TRH:     trh,
		Obs:     rec,
	}
	res, err := memctrl.Run(cfg, workload.S1(0, geo.RowsPerBank, 10, 60_000))
	if err != nil {
		t.Fatal(err)
	}
	if err := closeObs(); err != nil {
		t.Fatal(err)
	}
	if res.NRRCommands == 0 {
		t.Fatal("smoke replay issued no NRRs; the stream check below would be vacuous")
	}

	ef, err := os.Open(epath)
	if err != nil {
		t.Fatal(err)
	}
	defer ef.Close()
	sc := bufio.NewScanner(ef)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var lines, nrrs, lastSeq int64
	for sc.Scan() {
		lines++
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("event line %d is not valid JSON: %v: %q", lines, err, sc.Text())
		}
		if e.Seq <= lastSeq {
			t.Fatalf("event seq not increasing at line %d: %d after %d", lines, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
		if e.Kind == obs.KindNRR {
			nrrs++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("event stream is empty")
	}
	if nrrs != res.NRRCommands {
		t.Errorf("stream carried %d nrr events, result reports %d commands", nrrs, res.NRRCommands)
	}

	mb, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["nrr_commands_total"] != res.NRRCommands {
		t.Errorf("snapshot nrr_commands_total = %d, want %d", snap.Counters["nrr_commands_total"], res.NRRCommands)
	}
	if snap.Counters["victim_rows_total"] != res.RowsVictim {
		t.Errorf("snapshot victim_rows_total = %d, want %d", snap.Counters["victim_rows_total"], res.RowsVictim)
	}
	if snap.Events != lastSeq {
		t.Errorf("snapshot events_emitted = %d, last stream seq = %d", snap.Events, lastSeq)
	}
	if h, ok := snap.Histograms["acts_between_nrrs"]; !ok || h.Count == 0 {
		t.Errorf("acts_between_nrrs histogram missing or empty: %+v", h)
	}
}
