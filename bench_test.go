// Benchmark harness: one benchmark per table and figure of the paper
// (DESIGN.md §4 maps each exhibit to its bench). The benches both time the
// regeneration and attach the reproduced headline numbers as custom
// metrics, so `go test -bench=.` doubles as a reproduction report.
package graphene

import (
	"fmt"
	"strings"
	"testing"

	"graphene/internal/area"
	"graphene/internal/dram"
	grapheneimpl "graphene/internal/graphene"
	"graphene/internal/hammer"
	"graphene/internal/memctrl"
	"graphene/internal/mitigation"
	"graphene/internal/prohit"
	"graphene/internal/sched"
	"graphene/internal/security"
	"graphene/internal/sim"
	"graphene/internal/sketch"
	"graphene/internal/trace"
	"graphene/internal/workload"
)

// benchScale is the sizing used by the figure benches: large enough that
// ratios stabilize, small enough that a full -bench=. pass stays in
// minutes.
func benchScale() sim.Scale {
	return sim.Scale{
		Geometry:           dram.Geometry{Channels: 1, RanksPerChan: 1, BanksPerRank: 2, RowsPerBank: 64 * 1024},
		Timing:             dram.DDR4(),
		WorkloadAccesses:   120_000,
		AdversarialWindows: 0.25,
		Seed:               1,
	}
}

func BenchmarkTable1_RefreshParams(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := dram.DDR4()
		if err := t.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(dram.DDR4().MaxACTs(dram.DDR4().TREFW)), "W-acts/window")
}

func BenchmarkTable2_GrapheneParams(b *testing.B) {
	var p grapheneimpl.Params
	for i := 0; i < b.N; i++ {
		var err error
		p, err = grapheneimpl.Config{TRH: 50000, K: 1}.Derive()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(p.T), "T")
	b.ReportMetric(float64(p.NEntry), "Nentry")
}

func BenchmarkTable4_TableSizes(b *testing.B) {
	var bits int
	for i := 0; i < b.N; i++ {
		entries, err := area.Schemes(50000, dram.Default(), dram.DDR4())
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range entries {
			if e.Scheme == "graphene-k2" {
				bits = e.PerBank.TotalBits()
			}
		}
	}
	b.ReportMetric(float64(bits), "graphene-bits/bank")
}

func BenchmarkTable5_EnergyModel(b *testing.B) {
	// Replays the paper's Table V arithmetic: one full window at maximum
	// activation rate against one bank.
	sc := benchScale()
	geo := dram.Geometry{Channels: 1, RanksPerChan: 1, BanksPerRank: 1, RowsPerBank: 64 * 1024}
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := memctrl.Run(memctrl.Config{Geometry: geo, Timing: sc.Timing},
			workload.S3(0, 100, 50_000))
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.RefreshOverhead()
	}
	_ = ratio
}

func BenchmarkFig6_ResetWindowSweep(b *testing.B) {
	var rows []sim.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.Fig6(50000, 64*1024, dram.DDR4(), 1, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[1].NEntry), "Nentry-k2")
	b.ReportMetric(100*rows[1].WorstCaseRefreshRatio, "worst-extra-refresh-%")
}

func BenchmarkFig7_AdversarialPatterns(b *testing.B) {
	// Monte-Carlo of PRoHIT vs Fig. 7(a) at the compressed security scale.
	timing := dram.Timing{
		TREFI: 244 * dram.Nanosecond, TRFC: 20 * dram.Nanosecond,
		TRC: 45 * dram.Nanosecond, TRCD: 13300, TRP: 13300, TCL: 13300,
		TREFW: 2 * dram.Millisecond,
	}
	acts := timing.MaxACTs(timing.TREFW)
	var failures float64
	for i := 0; i < b.N; i++ {
		res, err := security.MonteCarlo(security.MCConfig{
			Factory: prohit.Factory(prohit.Config{Rows: 8192, Seed: int64(i), TickRefreshP: 0.14}),
			Pattern: func(trial int) trace.Generator { return workload.ProHITPattern(0, 4096, acts) },
			TRH:     1200, Rows: 8192, Timing: timing, Trials: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		failures = res.FailureProb
	}
	b.ReportMetric(failures, "prohit-fig7a-failure-prob")
}

// fig8Cells runs one normal-workload sweep over a representative pair of
// profiles and returns the per-scheme cells.
func fig8Cells(b *testing.B, sc sim.Scale) []sim.Row {
	b.Helper()
	schemes, err := sim.CounterSchemes(50000, sc)
	if err != nil {
		b.Fatal(err)
	}
	profiles := []workload.Profile{}
	for _, p := range workload.Profiles() {
		if p.Name == "mcf" || p.Name == "lbm" {
			profiles = append(profiles, p)
		}
	}
	rows, err := sim.SweepProfiles(sc, 50000, profiles, schemes)
	if err != nil {
		b.Fatal(err)
	}
	return rows
}

func maxBy(rows []sim.Row, prefix string, f func(sim.Cell) float64) float64 {
	var max float64
	for _, r := range rows {
		for _, c := range r.Cells {
			if strings.HasPrefix(c.Scheme, prefix) && f(c) > max {
				max = f(c)
			}
		}
	}
	return max
}

func BenchmarkFig8a_NormalEnergy(b *testing.B) {
	sc := benchScale()
	var rows []sim.Row
	for i := 0; i < b.N; i++ {
		rows = fig8Cells(b, sc)
	}
	b.ReportMetric(100*maxBy(rows, "Graphene", func(c sim.Cell) float64 { return c.RefreshOverhead }), "graphene-max-%")
	b.ReportMetric(100*maxBy(rows, "CBT", func(c sim.Cell) float64 { return c.RefreshOverhead }), "cbt-max-%")
	b.ReportMetric(100*maxBy(rows, "PARA", func(c sim.Cell) float64 { return c.RefreshOverhead }), "para-max-%")
}

func BenchmarkFig8b_AdversarialEnergy(b *testing.B) {
	sc := benchScale()
	var rows []sim.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.AdversarialSweep(sc, 50000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*maxBy(rows, "Graphene", func(c sim.Cell) float64 { return c.RefreshOverhead }), "graphene-max-%")
	b.ReportMetric(100*maxBy(rows, "PARA", func(c sim.Cell) float64 { return c.RefreshOverhead }), "para-max-%")
	b.ReportMetric(100*maxBy(rows, "CBT", func(c sim.Cell) float64 { return c.RefreshOverhead }), "cbt-max-%")
}

func BenchmarkFig8c_NormalPerf(b *testing.B) {
	sc := benchScale()
	var rows []sim.Row
	for i := 0; i < b.N; i++ {
		rows = fig8Cells(b, sc)
	}
	b.ReportMetric(100*maxBy(rows, "Graphene", func(c sim.Cell) float64 { return c.Slowdown }), "graphene-max-slowdown-%")
	b.ReportMetric(100*maxBy(rows, "CBT", func(c sim.Cell) float64 { return c.Slowdown }), "cbt-max-slowdown-%")
}

func BenchmarkFig9a_AreaScaling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		sweep, err := area.Sweep(dram.Default(), dram.DDR4())
		if err != nil {
			b.Fatal(err)
		}
		low := sweep[1562]
		var tw, gr float64
		for _, e := range low {
			switch e.Scheme {
			case "twice":
				tw = float64(e.PerRank.TotalBits())
			case "graphene-k2":
				gr = float64(e.PerRank.TotalBits())
			}
		}
		ratio = tw / gr
	}
	b.ReportMetric(ratio, "twice/graphene-at-1.56K")
}

func BenchmarkFig9b_EnergyScalingNormal(b *testing.B) {
	sc := benchScale()
	sc.WorkloadAccesses = 60_000
	var rows []sim.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.ScalingNormal(sc, []int64{50000, 12500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[len(rows)-1].Cells[3].RefreshOverhead, "para-at-12.5K-%")
}

func BenchmarkFig9c_EnergyScalingAdversarial(b *testing.B) {
	sc := benchScale()
	sc.AdversarialWindows = 0.1
	var rows []sim.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.ScalingAdversarial(sc, []int64{50000, 12500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[len(rows)-1].Cells[0].RefreshOverhead, "graphene-at-12.5K-%")
}

func BenchmarkFig9d_PerfScaling(b *testing.B) {
	sc := benchScale()
	sc.WorkloadAccesses = 60_000
	var rows []sim.ScalingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = sim.ScalingNormal(sc, []int64{50000, 12500})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[len(rows)-1].Cells[2].Slowdown, "cbt-at-12.5K-slowdown-%")
}

func BenchmarkSecVA_ParaP(b *testing.B) {
	var p float64
	for i := 0; i < b.N; i++ {
		var err error
		p, err = security.MinimalParaP(50000, security.DefaultSystem(), 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p, "p-at-50K")
}

func BenchmarkNonAdjacentFactor(b *testing.B) {
	var p grapheneimpl.Params
	for i := 0; i < b.N; i++ {
		var err error
		p, err = grapheneimpl.Config{TRH: 50000, K: 2, Distance: 4, Mu: grapheneimpl.InverseSquareMu}.Derive()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.AmpFactor, "amp-factor")
	b.ReportMetric(float64(p.NEntry), "Nentry-pm4")
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkAblation_OverflowBit compares the modeled table bits with and
// without the §IV-B count compression (protection behaviour is identical —
// TestOverflowBitMatchesReference proves it).
func BenchmarkAblation_OverflowBit(b *testing.B) {
	var with, without int
	for i := 0; i < b.N; i++ {
		pw, err := grapheneimpl.Config{TRH: 50000, K: 2}.Derive()
		if err != nil {
			b.Fatal(err)
		}
		po, err := grapheneimpl.Config{TRH: 50000, K: 2, DisableOverflowBit: true}.Derive()
		if err != nil {
			b.Fatal(err)
		}
		with, without = pw.TableBits, po.TableBits
	}
	b.ReportMetric(float64(with), "bits-with-overflow")
	b.ReportMetric(float64(without), "bits-without")
}

// BenchmarkAblation_ResetWindowK measures worst-case refresh overhead
// across k (the Fig. 6 trade-off) as a single metric pair.
func BenchmarkAblation_ResetWindowK(b *testing.B) {
	var k1, k5 float64
	for i := 0; i < b.N; i++ {
		rows, err := sim.Fig6(50000, 64*1024, dram.DDR4(), 1, 5)
		if err != nil {
			b.Fatal(err)
		}
		k1, k5 = rows[0].WorstCaseRefreshRatio, rows[4].WorstCaseRefreshRatio
	}
	b.ReportMetric(100*k1, "worst-%-k1")
	b.ReportMetric(100*k5, "worst-%-k5")
}

// BenchmarkScheme_AppendOnActivate measures the per-ACT software cost of
// each tracking engine (the hardware does this in one CAM cycle; here it
// bounds simulation throughput). The victim-refresh buffer is recycled the
// way memctrl's replay loop recycles its scratch, so the number reflects
// the steady-state allocation-free hot path.
func BenchmarkScheme_AppendOnActivate(b *testing.B) {
	sc := benchScale()
	specs, err := sim.CounterSchemes(50000, sc)
	if err != nil {
		b.Fatal(err)
	}
	specs = append(specs, sim.CRASpec(50000, sc))
	for _, spec := range specs {
		b.Run(spec.Name, func(b *testing.B) {
			m, err := spec.Factory()
			if err != nil {
				b.Fatal(err)
			}
			var vrs []mitigation.VictimRefresh
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				vrs = m.AppendOnActivate(vrs[:0], i&0xffff, dram.Time(i)*45*dram.Nanosecond)
			}
		})
	}
}

// BenchmarkTrackerFullScaleAdversarial drives the paper-scale K=1 bank
// (Nentry 108, T 12.5K) with an all-distinct churn stream at the maximum
// activation rate — the adversarial mix that makes nearly every ACT a miss
// and forced the pre-bucket-index tracker through its full linear scan,
// crossing real reset-window boundaries as simulated time advances. It
// reports the software cost (sw-ns/act) next to the modeled hardware
// table-update time for the same observed path mix (hw-ns/act via
// CAMTiming.Aggregate) — the EXPERIMENTS.md full-scale row.
func BenchmarkTrackerFullScaleAdversarial(b *testing.B) {
	eng, err := grapheneimpl.New(grapheneimpl.Config{TRH: 50000, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	timing := dram.DDR4()
	var vrs []mitigation.VictimRefresh
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vrs = eng.AppendOnActivate(vrs[:0], i&0xffff, dram.Time(i)*timing.TRC)
	}
	b.StopTimer()
	s := eng.Table().Stats()
	if paths := s.Hits + s.Replacements + s.Spills; paths > 0 {
		hw := grapheneimpl.DefaultCAMTiming().Aggregate(s)
		b.ReportMetric(float64(hw)/float64(dram.Nanosecond)/float64(paths), "hw-ns/act")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "sw-ns/act")
}

// BenchmarkSweepScheduler measures the sweep pool end to end: the whole
// Fig. 9(c) adversarial scaling grid (3 thresholds × 5 patterns × 4 schemes
// + 5 shared baselines) at -jobs 1 versus every core. The jobs-max/jobs-1
// wall-clock ratio is the speedup EXPERIMENTS.md's sweep-throughput table
// reports; on a single-core runner the two converge by construction.
func BenchmarkSweepScheduler(b *testing.B) {
	sc := benchScale()
	sc.AdversarialWindows = 0.1
	trhs := []int64{50000, 25000, 12500}
	for _, jobs := range []int{1, 0} {
		name := "jobs-1"
		if jobs == 0 {
			name = "jobs-max"
		}
		b.Run(name, func(b *testing.B) {
			var stats sched.MemoStats
			for i := 0; i < b.N; i++ {
				rows, err := sim.ScalingAdversarialOpts(sc, trhs, sim.Options{Jobs: jobs, BaselineStats: &stats})
				if err != nil {
					b.Fatal(err)
				}
				if len(rows) != len(trhs) {
					b.Fatalf("got %d scaling rows", len(rows))
				}
			}
			b.ReportMetric(float64(stats.Misses), "baseline-runs")
			b.ReportMetric(float64(stats.Hits), "baseline-hits")
		})
	}
}

// BenchmarkOracle_Activate measures the ground-truth oracle's per-ACT cost.
func BenchmarkOracle_Activate(b *testing.B) {
	for _, dist := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("distance-%d", dist), func(b *testing.B) {
			o, err := newOracle(dist)
			if err != nil {
				b.Fatal(err)
			}
			var fl []hammer.Flip
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl = o.AppendActivate(fl[:0], i&0xffff, 0)
				if i&0xfff == 0 {
					o.RefreshRow(i & 0xffff)
				}
			}
		})
	}
}

func newOracle(dist int) (*hammer.Oracle, error) {
	return hammer.NewOracle(64*1024, 1<<40, dist, nil)
}

// BenchmarkSecVI_FrequentElements compares the §VI related-work trackers'
// per-ACT software cost and reports the area ratios as metrics.
func BenchmarkSecVI_FrequentElements(b *testing.B) {
	g, err := grapheneimpl.New(grapheneimpl.Config{TRH: 50000, K: 2})
	if err != nil {
		b.Fatal(err)
	}
	cms, err := sketch.NewCMS(sketch.CMSConfig{TRH: 50000, K: 2})
	if err != nil {
		b.Fatal(err)
	}
	ss, err := sketch.NewSpaceSaving(sketch.SSConfig{TRH: 50000, K: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("misra-gries", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.AppendOnActivate(nil, i&0xffff, 0)
		}
	})
	b.Run("count-min", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cms.AppendOnActivate(nil, i&0xffff, 0)
		}
	})
	b.Run("space-saving", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ss.AppendOnActivate(nil, i&0xffff, 0)
		}
	})
	b.ReportMetric(float64(cms.Cost().TotalBits())/float64(g.Cost().TotalBits()), "cms/mg-bits")
	b.ReportMetric(float64(ss.Cost().TotalBits())/float64(g.Cost().TotalBits()), "ss/mg-bits")
}
